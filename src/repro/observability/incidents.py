"""Incident stitching: TraceBus events → per-incident MTTR decomposition.

The paper's argument is quantitative — recovery is "cheap" because the
time-to-recover stays small and user-visible damage stays bounded — but the
raw telemetry is an event soup: a ``fault.injected`` here, a burst of
``detector.report``s there, an ``rm.action.end`` somewhere later.  The
:class:`IncidentTracker` subscribes to the bus and stitches those events
into first-class :class:`Incident` records, each carrying the standard
MTTR phase decomposition:

* **detection** — fault injection → first failure report;
* **diagnosis** — first report → the RM's first recovery decision;
* **recovery** — first decision → last recovery action finished (this
  covers the whole escalation ladder, including the gaps between rungs);
* **residual** — last action finished → last attributed failure evidence
  (the post-recovery degradation tail: login prompts after a
  session-destroying restart, stragglers timing out, …).

The four phases are *consecutive segments* of the incident's lifetime, so
they always sum exactly to its wall-clock span — the invariant the chaos
benchmark gates on.

Attribution rules (in priority order, each event lands on at most one
incident):

1. component overlap — the event's component target(s) intersect an open
   incident's component set (failure reports are mapped to components via
   the same longest-prefix URL → call-path map the RM diagnoses with);
2. same server — node-wide actions (application/JVM/OS restarts) attach to
   the earliest open incident on that node;
3. open infrastructure incident — link faults, node slowdowns and SSM
   outages (from ``chaos.event``) absorb otherwise-unattributable
   failures;
4. otherwise a new incident is opened — except for reports the RM
   suppressed as quarantine-explained (``rm.report.quarantined``), which
   must never open phantom incidents: the quarantine that explains them
   already has one.

An incident closes when it has been quiet for ``quiet_period`` simulated
seconds (no attributed evidence, no pending recovery decision).  How it
closed is recorded: ``recovered`` (at least one successful recovery
action), ``failover`` (the LB routed around it and no recovery ran),
``quarantine`` (parked behind a fast-503 sentinel), or ``quiesced`` (the
failures simply stopped — e.g. a healed link fault).  The tracker is
passive and deterministic: it never schedules kernel events, so enabling
it cannot perturb a simulation.
"""

from dataclasses import dataclass, field

#: Kinds the tracker subscribes to.  Deliberately excludes the
#: per-request firehose (``request.*``): incident evidence is the handful
#: of detector/RM/LB events per failure, so tracking costs O(incidents),
#: not O(requests).
TRACKED_KINDS = (
    "fault.injected",
    "chaos.event",
    "detector.report",
    "rm.*",
    "lb.failover.begin",
    "lb.failover.end",
)

#: chaos.event kinds that open *infrastructure* incidents.  Component-level
#: chaos kinds also publish ``fault.injected`` (the injector logs them) and
#: are handled there.
_INFRA_OPEN = {"link": "link", "slowdown": "node", "ssm-crash": "ssm"}
_INFRA_HEAL = {"link-heal": "link", "slowdown-heal": "node", "ssm-restart": "ssm"}

#: Quiet time (simulated seconds) after which an incident is considered
#: over.  Long enough to bridge a flap train's pulses and a quarantine's
#: suppressed-report stream; short enough that distinct chaos faults on
#: the same component minutes apart become distinct incidents.
DEFAULT_QUIET_PERIOD = 30.0


def path_for_url(url, url_path_map):
    """Longest-prefix match into a URL → call-path map (the RM's rule)."""
    best = None
    for prefix in url_path_map:
        if url.startswith(prefix) and (best is None or len(prefix) > len(best)):
            best = prefix
    return tuple(url_path_map.get(best, ()))


@dataclass
class Incident:
    """One stitched incident: fault(s) → detection → recovery → quiet."""

    id: int
    key: str  # component name, infra key ("link:node-2", "ssm"), or URL
    server: str = None  # node/server name, when attributable
    trigger: str = "fault"  # fault | chaos | detector | quarantine | recovery
    components: set = field(default_factory=set)
    opened_at: float = 0.0
    closed_at: float = None
    closed_by: str = None  # recovered | failover | quarantine | quiesced
    faults: list = field(default_factory=list)  # (t, fault kind, target)
    first_report_at: float = None
    last_report_at: float = None
    reports: int = 0
    suppressed_reports: int = 0  # quarantine-explained, never incident-opening
    deferrals: int = 0  # backoff-deferred recoveries
    storm_denied: int = 0  # storm-limited deferrals
    quarantines: int = 0
    failovers: int = 0
    actions: list = field(default_factory=list)  # dicts, see _on_action
    last_activity: float = 0.0
    #: Recovery decisions announced but not yet finished: blocks the quiet-
    #: period close so a slow OS reboot cannot outlive its own incident.
    pending_actions: int = 0

    @property
    def open(self):
        return self.closed_at is None

    @property
    def recovered(self):
        return any(action["ok"] for action in self.actions)

    @property
    def end(self):
        return self.closed_at if self.closed_at is not None else self.last_activity

    @property
    def span(self):
        """Wall-clock lifetime in simulated seconds."""
        return max(0.0, self.end - self.opened_at)

    def touch(self, t):
        if t > self.last_activity:
            self.last_activity = t

    def phases(self):
        """The MTTR decomposition; values always sum to :attr:`span`.

        The four phases are consecutive segments of ``[opened_at, end]``,
        clamped so that out-of-order evidence (a report stamped before the
        fault, a decision racing a report) can never produce a negative
        phase or break the sum-to-span invariant.
        """
        end = self.end
        t0 = self.opened_at
        t1 = self.first_report_at if self.first_report_at is not None else t0
        t1 = min(max(t1, t0), end)
        if self.actions:
            t2 = min(a["decided_at"] for a in self.actions)
            t3 = max(a["finished_at"] for a in self.actions)
        else:
            t2 = t3 = t1
        t2 = min(max(t2, t1), end)
        t3 = min(max(t3, t2), end)
        return {
            "detection": t1 - t0,
            "diagnosis": t2 - t1,
            "recovery": t3 - t2,
            "residual": end - t3,
        }

    def to_dict(self):
        """Plain-data export (JSONL lines, campaign outcomes)."""
        return {
            "id": self.id,
            "key": self.key,
            "server": self.server,
            "trigger": self.trigger,
            "components": sorted(self.components),
            "opened_at": round(self.opened_at, 6),
            "closed_at": (
                round(self.closed_at, 6) if self.closed_at is not None else None
            ),
            "closed_by": self.closed_by,
            "span": round(self.span, 6),
            "phases": {k: round(v, 6) for k, v in self.phases().items()},
            "faults": len(self.faults),
            "fault_kinds": sorted({kind for _t, kind, _tgt in self.faults}),
            "reports": self.reports,
            "suppressed_reports": self.suppressed_reports,
            "deferrals": self.deferrals,
            "storm_denied": self.storm_denied,
            "quarantines": self.quarantines,
            "failovers": self.failovers,
            "recovered": self.recovered,
            "actions": [
                {
                    "level": a["level"],
                    "target": list(a["target"]),
                    "ok": a["ok"],
                    "decided_at": round(a["decided_at"], 6),
                    "finished_at": round(a["finished_at"], 6),
                }
                for a in self.actions
            ],
        }


class IncidentTracker:
    """Subscribes to a :class:`~repro.telemetry.trace.TraceBus` and stitches
    fault/detector/RM/LB events into :class:`Incident` records.

    Works in two modes: live (pass ``kernel`` or ``bus``; events arrive via
    the subscription) and offline (construct with neither and push recorded
    JSONL timeline records through :meth:`feed_record`).  Call
    :meth:`finalize` when the run/timeline ends to close whatever is still
    open.
    """

    def __init__(self, kernel=None, bus=None, url_path_map=None,
                 quiet_period=DEFAULT_QUIET_PERIOD):
        if quiet_period <= 0:
            raise ValueError(f"quiet_period must be > 0, got {quiet_period!r}")
        self.url_path_map = dict(url_path_map or {})
        self.quiet_period = quiet_period
        #: component -> number of mapped URL prefixes containing it;
        #: detector-opened incidents are keyed by the component *specific*
        #: to the failing URL, mirroring the RM's specificity weighting.
        self._containing = {}
        for path in self.url_path_map.values():
            for component in path:
                self._containing[component] = self._containing.get(component, 0) + 1
        self.incidents = []
        self._open = []
        self._next_id = 1
        #: Called with each Incident as it closes (estimators feed on
        #: these).  Listeners must be passive: closure happens inside
        #: event intake, so scheduling kernel work here would perturb
        #: the run the tracker promises not to touch.
        self.close_listeners = []
        self.bus = bus if bus is not None else (
            kernel.trace if kernel is not None else None
        )
        self._token = None
        if self.bus is not None:
            self._token = self.bus.subscribe(self._on_event, kinds=TRACKED_KINDS)

    def detach(self):
        """Stop listening (the collected incidents remain readable)."""
        if self.bus is not None and self._token is not None:
            self.bus.unsubscribe(self._token)
            self._token = None

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def _on_event(self, event):
        self.feed(event.t, event.kind, event.fields)

    def feed_record(self, record):
        """Ingest one flattened JSONL timeline record."""
        fields = {
            key: value for key, value in record.items()
            if key not in ("t", "seq", "kind", "bus")
        }
        self.feed(record["t"], record["kind"], fields)

    def feed(self, t, kind, fields):
        self._sweep(t)
        if kind == "fault.injected":
            self._on_fault(t, fields)
        elif kind == "chaos.event":
            self._on_chaos(t, fields)
        elif kind == "detector.report":
            # A report forwarded to an RM is adjudicated there: the RM's
            # ``rm.report`` counts it (with node attribution) and its
            # ``rm.report.quarantined`` suppresses it — here it is only
            # detection *evidence* on an already-open incident, never
            # grounds to open one.  Unforwarded reports (no RM wired) are
            # the only detection signal there is, so they count fully.
            forwarded = bool(fields.get("reported"))
            self._on_report(
                t, fields.get("url", ""), server=None,
                count=not forwarded, open_new=not forwarded,
            )
        elif kind == "rm.report":
            self._on_report(t, fields.get("url", ""), server=fields.get("server"))
        elif kind == "rm.report.quarantined":
            self._on_report(
                t, fields.get("url", ""), server=fields.get("server"),
                suppressed=True, open_new=False,
            )
        elif kind == "rm.decision":
            self._on_decision(t, fields)
        elif kind == "rm.action.end":
            self._on_action(t, fields)
        elif kind == "rm.recovery.deferred":
            self._on_deferred(t, fields)
        elif kind == "rm.quarantine.begin":
            self._on_quarantine(t, fields)
        elif kind in ("lb.failover.begin", "lb.failover.end"):
            self._on_failover(t, fields, begin=kind.endswith("begin"))
        elif kind.startswith("rm."):
            # Remaining RM chatter (diagnosis audit, backoff bookkeeping,
            # quarantine lifts, storm denials — the deferred event carries
            # the attribution) keeps its incident warm but adds nothing.
            self._touch_matching(t, fields)

    def finalize(self, now=None):
        """Close every still-open incident (end of run / end of timeline)."""
        for incident in list(self._open):
            self._close(incident)
        return self.incidents

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open_incidents(self):
        return list(self._open)

    def _sweep(self, now):
        for incident in list(self._open):
            if (
                incident.pending_actions == 0
                and now - incident.last_activity > self.quiet_period
            ):
                self._close(incident)

    def _close(self, incident):
        incident.closed_at = incident.last_activity
        if incident.recovered:
            incident.closed_by = "recovered"
        elif incident.failovers:
            incident.closed_by = "failover"
        elif incident.quarantines:
            incident.closed_by = "quarantine"
        else:
            incident.closed_by = "quiesced"
        self._open.remove(incident)
        for listener in self.close_listeners:
            listener(incident)

    def _open_incident(self, t, key, server=None, components=(),
                       trigger="fault"):
        incident = Incident(
            id=self._next_id,
            key=key,
            server=server,
            trigger=trigger,
            components=set(components),
            opened_at=t,
            last_activity=t,
        )
        self._next_id += 1
        self.incidents.append(incident)
        self._open.append(incident)
        return incident

    # ------------------------------------------------------------------
    # Matching (attribution)
    # ------------------------------------------------------------------
    @staticmethod
    def _server_compatible(incident, server):
        return (
            server is None
            or incident.server is None
            or incident.server == server
        )

    def _earliest(self, candidates):
        return min(candidates, key=lambda i: (i.opened_at, i.id), default=None)

    def _match_components(self, components, server=None):
        if not components:
            return None
        return self._earliest(
            i for i in self._open
            if i.components & components and self._server_compatible(i, server)
        )

    def _match_server(self, server):
        return self._earliest(
            i for i in self._open if self._server_compatible(i, server)
        )

    def _match_infra(self, server=None):
        return self._earliest(
            i for i in self._open
            if i.trigger == "chaos" and self._server_compatible(i, server)
        )

    def _specific_component(self, path):
        """The path component appearing on the fewest mapped URLs."""
        if not path:
            return None
        indexed = list(enumerate(path))
        # Fewest containing paths wins; ties go to the deepest component.
        _i, name = min(
            indexed, key=lambda pair: (self._containing.get(pair[1], 1), -pair[0])
        )
        return name

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _on_fault(self, t, fields):
        target = fields.get("target")
        server = fields.get("server")
        fault = fields.get("fault")
        incident = self._match_components({target}, server)
        if incident is None:
            incident = self._open_incident(
                t, key=target, server=server, components={target},
                trigger="fault",
            )
        incident.faults.append((t, fault, target))
        incident.touch(t)

    def _on_chaos(self, t, fields):
        kind = fields.get("kind")
        node = fields.get("node")
        if kind in _INFRA_OPEN:
            base = _INFRA_OPEN[kind]
            key = f"{base}:{node}" if node else base
            incident = self._earliest(
                i for i in self._open if i.key == key
            )
            if incident is None:
                incident = self._open_incident(
                    t, key=key, server=node, trigger="chaos"
                )
            incident.faults.append((t, kind, node))
            incident.touch(t)
        elif kind in _INFRA_HEAL:
            base = _INFRA_HEAL[kind]
            key = f"{base}:{node}" if node else base
            for incident in self._open:
                if incident.key == key:
                    incident.touch(t)
        # Component-level chaos kinds already arrived as fault.injected.

    def _on_report(self, t, url, server=None, suppressed=False, count=True,
                   open_new=True):
        path = path_for_url(url, self.url_path_map)
        incident = self._match_components(set(path), server)
        if incident is None:
            incident = self._match_infra(server)
        if incident is None:
            if not open_new:
                return  # quarantine-explained/forwarded: no phantom incidents
            key = self._specific_component(path) or url
            incident = self._open_incident(
                t, key=key, server=server, components=set(path),
                trigger="detector",
            )
        if suppressed:
            incident.suppressed_reports += 1
        elif count:
            incident.reports += 1
            if incident.first_report_at is None:
                incident.first_report_at = t
            incident.last_report_at = t
        elif incident.first_report_at is None:
            # Detection evidence from a forwarded detector.report: stamps
            # the detection phase without double-counting the rm.report
            # that follows.
            incident.first_report_at = t
        incident.touch(t)

    def _attribute_action(self, decided_at, target, server):
        incident = self._match_components(set(target), server) if target else None
        if incident is None:
            incident = self._match_server(server)
        if incident is None:
            incident = self._match_infra()
        return incident

    def _on_decision(self, t, fields):
        """A recovery was announced: pin its incident open until it ends."""
        target = tuple(fields.get("target") or ())
        server = fields.get("server")
        incident = self._attribute_action(t, target, server)
        if incident is not None:
            incident.pending_actions += 1
            incident.touch(t)

    def _on_action(self, t, fields):
        level = fields.get("level")
        target = tuple(fields.get("target") or ())
        duration = fields.get("duration") or 0.0
        decided_at = t - duration
        server = fields.get("server")
        incident = self._attribute_action(decided_at, target, server)
        if incident is None:
            # A recovery with no tracked cause (e.g. a rejuvenation µRB on
            # a quiet system) still gets an incident, opened at decision
            # time so the recovery phase covers the action exactly.
            incident = self._open_incident(
                decided_at, key=f"recovery:{level}", server=server,
                components=set(target), trigger="recovery",
            )
        incident.actions.append(
            {
                "level": level,
                "target": list(target),
                "ok": bool(fields.get("ok")),
                "error": fields.get("error"),
                "decided_at": decided_at,
                "finished_at": t,
            }
        )
        incident.components |= set(target)
        incident.pending_actions = max(0, incident.pending_actions - 1)
        incident.touch(t)

    def _on_deferred(self, t, fields):
        targets = tuple(fields.get("targets") or ())
        server = fields.get("server")
        incident = self._attribute_action(t, targets, server)
        if incident is None:
            return
        if fields.get("reason") == "storm":
            incident.storm_denied += 1
        else:
            incident.deferrals += 1
        incident.touch(t)

    def _on_quarantine(self, t, fields):
        component = fields.get("component")
        server = fields.get("server")
        incident = self._match_components({component}, server)
        if incident is None:
            incident = self._open_incident(
                t, key=component, server=server, components={component},
                trigger="quarantine",
            )
        incident.quarantines += 1
        incident.touch(t)

    def _on_failover(self, t, fields, begin):
        node = fields.get("node")
        for incident in self._open:
            if incident.server == node:
                if begin:
                    incident.failovers += 1
                incident.touch(t)

    def _touch_matching(self, t, fields):
        target = fields.get("target")
        targets = {target} if isinstance(target, str) else set(target or ())
        component = fields.get("component")
        if component:
            targets.add(component)
        incident = self._match_components(targets, fields.get("server"))
        if incident is None and fields.get("server") is not None:
            incident = self._match_server(fields.get("server"))
        if incident is not None:
            incident.touch(t)


def max_concurrent_actions(incidents):
    """Peak number of simultaneously in-flight recovery actions.

    Sweep-line over every attributed action's ``[decided_at,
    finished_at)`` interval across all ``incidents``.  With the serial
    recovery scheduler this is at most 1 per node; the dependency-aware
    parallel scheduler pushes it higher whenever independent components
    recover concurrently.  An action closing at instant *t* releases
    before one opening at *t* counts, so abutting actions don't overlap.
    """
    events = []
    for incident in incidents:
        for action in incident.actions:
            events.append((action["decided_at"], 1))
            events.append((action["finished_at"], -1))
    events.sort(key=lambda e: (e[0], e[1]))
    peak = active = 0
    for _t, delta in events:
        active += delta
        peak = max(peak, active)
    return peak


def aggregate_incidents(incidents):
    """Plain-data rollup for campaign outcomes and rendered notes."""
    count = len(incidents)
    closed_by = {}
    phase_sums = {"detection": 0.0, "diagnosis": 0.0, "recovery": 0.0,
                  "residual": 0.0}
    span_sum = 0.0
    for incident in incidents:
        closed_by[incident.closed_by] = closed_by.get(incident.closed_by, 0) + 1
        for phase, value in incident.phases().items():
            phase_sums[phase] += value
        span_sum += incident.span
    return {
        "count": count,
        "closed_by": dict(sorted(closed_by.items())),
        "actions_attributed": sum(len(i.actions) for i in incidents),
        "reports_attributed": sum(i.reports for i in incidents),
        "suppressed_reports": sum(i.suppressed_reports for i in incidents),
        "mean_span": round(span_sum / count, 3) if count else None,
        "mean_phases": (
            {k: round(v / count, 3) for k, v in phase_sums.items()}
            if count else {}
        ),
    }
