"""Exposition: Prometheus text format, JSONL incident export, replay.

Two export surfaces, one for machines and one for pipelines:

* :func:`render_prometheus` turns any
  :class:`~repro.telemetry.metrics.MetricsRegistry` into the Prometheus
  text exposition format (``# TYPE`` headers, ``{label="..."}`` series,
  quantile summaries for histogram sketches) — scrape-shaped, entirely
  deterministic line order;
* :func:`write_incidents` dumps stitched incidents as JSONL, one incident
  per line, for downstream analysis.

The replay half (:func:`incidents_from_timeline`) rebuilds incidents from
a recorded JSONL timeline by pushing its records through an offline
:class:`~repro.observability.incidents.IncidentTracker` — the same
stitching code path as live runs, so ``repro incidents`` on a recorded
timeline agrees with what the live tracker saw.
"""

import json

from repro.observability.alerts import AlertEngine
from repro.observability.estimators import EstimatorHub
from repro.observability.health import HEALTH_KINDS, ComponentHealthRegistry
from repro.observability.incidents import (
    DEFAULT_QUIET_PERIOD,
    IncidentTracker,
    TRACKED_KINDS,
)
from repro.telemetry.trace import _Subscription
from repro.telemetry.metrics import (
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
)


def _metric_name(name, prefix):
    """Registry name → Prometheus metric name (dots become underscores)."""
    safe = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"{prefix}{safe}"


def _fmt_value(value):
    if value is None:
        return "NaN"
    if isinstance(value, int) or (
        isinstance(value, float) and value.is_integer()
    ):
        return str(int(value))
    return repr(float(value))


def _escape_label(value):
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def render_prometheus(registry, prefix="repro_"):
    """The registry in Prometheus text exposition format, one string.

    Counters and gauges render as single samples, counter families as one
    labelled series per child (``{key="..."}``), histograms as the summary
    convention: ``{quantile="..."}`` samples plus ``_sum`` and ``_count``.
    Metrics and labels are emitted in sorted order so the output is
    byte-stable across runs — diffable, testable, cacheable.
    """
    lines = []
    for name, metric in sorted(registry, key=lambda item: item[0]):
        prom = _metric_name(name, prefix)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_fmt_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_fmt_value(metric.value)}")
        elif isinstance(metric, (CounterFamily, GaugeFamily)):
            kind = "counter" if isinstance(metric, CounterFamily) else "gauge"
            label_name = getattr(metric, "label", "key") or "key"
            lines.append(f"# TYPE {prom} {kind}")
            for label, value in sorted(metric.as_dict().items()):
                lines.append(
                    f'{prom}{{{label_name}="{_escape_label(label)}"}} '
                    f"{_fmt_value(value)}"
                )
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {prom} summary")
            for q in (0.5, 0.95, 0.99):
                value = metric.quantile(q)
                if value is not None:
                    lines.append(
                        f'{prom}{{quantile="{q}"}} {_fmt_value(value)}'
                    )
            lines.append(f"{prom}_sum {_fmt_value(metric.sum)}")
            lines.append(f"{prom}_count {metric.count}")
    return "\n".join(lines) + "\n" if lines else ""


def registry_from_observability(incidents, windows, registry=None):
    """Fold incidents + SLO windows into a registry for exposition.

    Builds the scrape-shaped view of a finished run: incident counts by
    trigger and by how they closed, MTTR phase totals, and the SLO
    window/violation tallies.  Pass an existing registry to merge into a
    rig's own metrics.
    """
    from repro.telemetry.metrics import MetricsRegistry

    registry = registry if registry is not None else MetricsRegistry()
    count = registry.counter("incidents.count")
    by_trigger = registry.family("incidents.by_trigger")
    by_closed = registry.family("incidents.by_closed_by")
    phase_seconds = registry.family("incidents.phase_seconds")
    span_hist = registry.histogram("incidents.span_seconds")
    for incident in incidents:
        count.inc()
        by_trigger.inc(incident.trigger)
        if incident.closed_by:
            by_closed.inc(incident.closed_by)
        for phase, seconds in incident.phases().items():
            phase_seconds.inc(phase, seconds)
        span_hist.observe(incident.span)
    registry.counter("slo.windows").inc(len(windows))
    registry.counter("slo.violations").inc(
        sum(1 for w in windows if w.violated)
    )
    burn = registry.gauge("slo.max_burn")
    finite = [w.burn for w in windows if w.burn != float("inf")]
    burn.set(round(max(finite), 6) if finite else 0.0)
    return registry


def write_incidents(path, incidents):
    """One incident dict per JSONL line; returns the number written."""
    with open(path, "w", encoding="utf-8") as fh:
        for incident in incidents:
            fh.write(json.dumps(incident.to_dict(), sort_keys=True) + "\n")
    return len(incidents)


def incidents_from_timeline(records, url_path_map=None,
                            quiet_period=DEFAULT_QUIET_PERIOD):
    """Rebuild incidents from recorded timeline records (offline replay).

    Records are replayed in ``(t, seq)`` order through an offline tracker
    — the same stitching logic as a live run.  Multi-bus timelines
    (figure-1 runs one kernel per policy) are replayed per bus so one
    bus's recovery events cannot close another bus's incidents; incidents
    come back ordered by bus, then open time.
    """
    matcher = _Subscription(None, TRACKED_KINDS)
    by_bus = {}
    for record in records:
        if matcher.matches(record.get("kind", "")):
            by_bus.setdefault(record.get("bus"), []).append(record)
    incidents = []
    for bus in sorted(by_bus, key=str):
        tracker = IncidentTracker(
            url_path_map=url_path_map, quiet_period=quiet_period
        )
        for record in sorted(
            by_bus[bus], key=lambda r: (r["t"], r.get("seq", 0))
        ):
            tracker.feed_record(record)
        incidents.extend(tracker.finalize())
    # Per-bus trackers each number from 1; renumber into one sequence.
    for index, incident in enumerate(incidents, start=1):
        incident.id = index
    return incidents


def registry_from_health(rows, registry=None):
    """Fold a health snapshot into a registry for Prometheus exposition.

    One ``health.score.<server>.<component>`` gauge per component plus
    per-signal gauges — scrape-shaped, sorted by
    :func:`render_prometheus` into byte-stable output.
    """
    from repro.telemetry.metrics import MetricsRegistry

    registry = registry if registry is not None else MetricsRegistry()
    for row in rows:
        key = f"{row['server'] or '-'}.{row['component']}"
        registry.gauge(f"health.score.{key}").set(row["score"])
        for signal in ("hazard", "burn", "flap", "heap"):
            registry.gauge(f"health.signal.{signal}.{key}").set(row[signal])
    return registry


def registry_from_cluster(rows, summary=None, signals=(), registry=None):
    """Fold per-shard rollup rows into ``shard=``-labelled families.

    One gauge/counter family per rollup statistic, labelled by shard, plus
    the cluster-level reduction as flat gauges — scrape-shaped for the
    ``repro shards --prom`` surface.
    """
    from repro.telemetry.metrics import MetricsRegistry

    registry = registry if registry is not None else MetricsRegistry()
    gauges = (
        ("shard.availability", "availability"),
        ("shard.sessions", "sessions"),
        ("shard.gaw_per_second", "gaw_per_second"),
        ("shard.probe_p50_seconds", "probe_p50"),
        ("shard.probe_p99_seconds", "probe_p99"),
        ("shard.capacity_score", "capacity_score"),
        ("shard.headroom", "headroom"),
    )
    counters = (
        ("shard.probes", "probes"),
        ("shard.probe_failures", "probe_failures"),
        ("shard.failovers", "failovers"),
        ("shard.storm_events", "storm_events"),
        ("shard.migrated_in", "migrated_in"),
        ("shard.migrated_out", "migrated_out"),
        ("shard.slo_violations", None),  # nested under "slo" in live rows
    )
    for row in rows:
        shard = row.get("shard")
        if not shard:
            continue
        for name, key in gauges:
            value = row.get(key)
            if value is not None:
                registry.gauge_family(name, label="shard").set(shard, value)
        registry.gauge_family("shard.pressured", label="shard").set(
            shard, 1 if row.get("pressured") else 0
        )
        for name, key in counters:
            if key is None:
                slo = row.get("slo") or {}
                value = slo.get("violations", row.get("slo_violations"))
            else:
                value = row.get(key)
            if value:
                registry.family(name, label="shard").inc(shard, value)
    if summary:
        for key in (
            "availability", "probe_p50", "probe_p99", "sessions",
            "probes", "probe_failures", "failovers", "slo_violations",
        ):
            value = summary.get(key)
            if value is not None:
                registry.gauge(f"cluster.{key}").set(value)
        registry.gauge("cluster.shards").set(summary.get("shards", len(rows)))
        registry.gauge("cluster.pressured_shards").set(
            len(summary.get("pressured_shards", ()))
        )
    if signals:
        by_kind = registry.family("cluster.capacity_signals", label="signal")
        for signal in signals:
            by_kind.inc(signal.get("signal", "unknown"))
    return registry


def health_from_timeline(records, url_path_map=None, rules=None,
                         quiet_period=DEFAULT_QUIET_PERIOD):
    """Replay a recorded timeline through the full predictive pipeline.

    Rebuilds, per bus, the same chain a live rig runs — IncidentTracker →
    EstimatorHub → ComponentHealthRegistry → AlertEngine — and returns
    ``(health_rows, alerts, incidents)``: the end-of-timeline health
    snapshot, every alert the ruleset would have fired (recomputed, so
    ``repro alerts`` works on timelines recorded before alerting
    existed), and the stitched incidents for lead-time comparison.
    """
    tracked = _Subscription(None, TRACKED_KINDS)
    health_kinds = _Subscription(None, HEALTH_KINDS)
    report_kinds = ("detector.report", "rm.report")
    by_bus = {}
    for record in records:
        kind = record.get("kind", "")
        if (
            tracked.matches(kind)
            or health_kinds.matches(kind)
            or kind in report_kinds
        ):
            by_bus.setdefault(record.get("bus"), []).append(record)
    rows, alerts, incidents = [], [], []
    for bus in sorted(by_bus, key=str):
        tracker = IncidentTracker(
            url_path_map=url_path_map, quiet_period=quiet_period
        )
        hub = EstimatorHub(tracker=tracker, url_path_map=url_path_map)
        engine = AlertEngine(rules=rules)
        registry = ComponentHealthRegistry(hub=hub, alert_engine=engine)
        end = 0.0
        for record in sorted(
            by_bus[bus], key=lambda r: (r["t"], r.get("seq", 0))
        ):
            kind = record["kind"]
            end = max(end, record["t"])
            if tracked.matches(kind):
                tracker.feed_record(record)
            if kind in report_kinds:
                hub.feed_report(
                    record["t"], record.get("url", ""),
                    server=record.get("server"),
                )
            if health_kinds.matches(kind):
                registry.feed_record(record)
        incidents.extend(tracker.finalize())
        alerts.extend(engine.finalize(end))
        rows.extend(registry.snapshot(end))
    for index, incident in enumerate(incidents, start=1):
        incident.id = index
    return rows, alerts, incidents
