"""Declarative alerting over component health: threshold → for → fire.

The health registry (:mod:`repro.observability.health`) reduces the
telemetry soup to a handful of per-component signals; this module turns
those signals into *alerts* the way a production monitoring stack would:

* an :class:`AlertRule` is declarative — which signal, which threshold,
  which direction, how long the condition must **hold**
  (``for_duration``, Prometheus's ``for:``), and a severity label;
* the :class:`AlertEngine` tracks per-(rule, key) pending state, fires
  once when the condition has held long enough, stays silent while the
  alert is active (dedup), and resolves once the condition clears;
* every transition publishes a sticky ``alert.fired`` /
  ``alert.resolved`` bus event, so alerts land in recorded timelines and
  survive ring eviction like the rest of the recovery story.

The engine never schedules kernel events: :meth:`AlertEngine.evaluate`
is called by the health registry on every intake event (and by anyone
else who wants an evaluation point), so alerting piggybacks on the
run's own telemetry cadence.  ``on_fire`` / ``on_resolve`` listeners are
the hook the proactive rejuvenation policy closes the loop through.

:func:`alert_lead_times` measures the headline quantity: how many
seconds before an incident *opened* did an alert on the same server
fire?  Positive medians mean the predictive layer genuinely leads the
failures it predicts.
"""

from dataclasses import dataclass, field

#: Severity labels, mildest first (purely descriptive; no ordering logic).
SEVERITIES = ("info", "warn", "ticket", "page")


@dataclass(frozen=True)
class AlertRule:
    """One declarative alert rule.

    ``signal`` names a health-registry signal:

    * ``"health"`` — the 0–100 score, per component;
    * ``"hazard"`` / ``"flap"`` / ``"burn"`` / ``"heap"`` — the
      normalized [0, 1] penalty signals, per component;
    * ``"heap_tta"`` — predicted seconds to heap alarm, per server
      (no-trend ⇒ no opinion ⇒ condition false);
    * ``"heap_utilization"`` — fraction of heap used, per server.

    ``scope`` picks the key universe (``"component"``, ``"server"`` or
    ``"global"``); ``below`` picks the comparison direction.
    """

    name: str
    signal: str
    threshold: float
    below: bool = True
    for_duration: float = 0.0
    severity: str = "warn"
    scope: str = "component"

    def __post_init__(self):
        if self.for_duration < 0:
            raise ValueError(
                f"for_duration must be >= 0, got {self.for_duration!r}"
            )
        if self.scope not in ("component", "server", "global"):
            raise ValueError(f"unknown alert scope {self.scope!r}")

    def condition(self, value):
        if value is None:
            return False
        return value < self.threshold if self.below else value > self.threshold


@dataclass
class Alert:
    """One fired alert instance (resolved or still active)."""

    rule: str
    severity: str
    signal: str
    server: str
    component: str
    fired_at: float
    value: float
    resolved_at: float = None
    pending_since: float = field(default=None, repr=False)

    @property
    def active(self):
        return self.resolved_at is None

    def to_dict(self):
        return {
            "rule": self.rule,
            "severity": self.severity,
            "signal": self.signal,
            "server": self.server,
            "component": self.component,
            "fired_at": round(self.fired_at, 6),
            "resolved_at": (
                round(self.resolved_at, 6)
                if self.resolved_at is not None else None
            ),
            "value": round(self.value, 6) if self.value is not None else None,
        }


def default_rules():
    """The stock ruleset the chaos rigs and CLIs evaluate.

    Tuned for the simulated cluster's scales: the heap-prediction rule is
    the proactive-rejuvenation trigger (a leak is *going* to cross the
    rejuvenation alarm within ~2 minutes), the health rule catches
    everything the blended score degrades on, and the burn rule pages on
    sustained error-budget fire.
    """
    return (
        AlertRule(
            name="heap-exhaustion-predicted",
            signal="heap_tta",
            threshold=120.0,
            below=True,
            for_duration=5.0,
            severity="page",
            scope="server",
        ),
        AlertRule(
            name="component-health-low",
            signal="health",
            threshold=45.0,
            below=True,
            for_duration=10.0,
            severity="warn",
            scope="component",
        ),
        AlertRule(
            name="error-budget-burning",
            signal="burn",
            threshold=0.5,
            below=False,
            for_duration=10.0,
            severity="ticket",
            scope="global",
        ),
    )


class AlertEngine:
    """Evaluates rules against a health registry; fires, dedups, resolves.

    Passive: no kernel process, no timers.  :meth:`evaluate` runs at
    whatever cadence the caller (normally the health registry's event
    intake) provides; ``for_duration`` is judged against those
    evaluation timestamps, so a condition only "holds" while evidence
    keeps arriving — exactly the Prometheus ``for:`` semantics under a
    scrape-shaped clock.
    """

    def __init__(self, rules=None, bus=None, kernel=None):
        self.rules = tuple(rules if rules is not None else default_rules())
        self.bus = bus if bus is not None else (
            kernel.trace if kernel is not None else None
        )
        self.alerts = []  # every Alert ever fired, in fire order
        self._active = {}  # (rule.name, key) -> Alert
        self._pending = {}  # (rule.name, key) -> since timestamp
        self.on_fire = []  # callables(alert)
        self.on_resolve = []  # callables(alert)
        self.evaluations = 0

    # ------------------------------------------------------------------
    def _keys_for(self, rule, registry):
        if rule.scope == "component":
            return registry.keys()
        if rule.scope == "server":
            return [(server, None) for server in registry.servers()]
        return [(None, None)]

    def _value_for(self, rule, registry, server, component, now):
        signal = rule.signal
        if signal == "health":
            return registry.score(component, server=server, now=now)
        if signal == "heap_tta":
            return registry.heap_time_to_alarm(server, now=now)
        if signal == "heap_utilization":
            tracker = registry._heap.get(server)
            return tracker.utilization() if tracker is not None else None
        if signal == "burn":
            return registry.burn_signal(now)
        if signal == "hazard":
            return registry.hazard_signal(server, component, now)
        if signal == "flap":
            return registry.flap_signal(server, component, now)
        if signal == "heap":
            return registry.heap_signal(server, now)
        raise ValueError(f"unknown alert signal {signal!r}")

    def evaluate(self, now, registry):
        """One evaluation sweep; returns alerts fired during it."""
        self.evaluations += 1
        fired = []
        for rule in self.rules:
            for server, component in self._keys_for(rule, registry):
                key = (rule.name, server, component)
                value = self._value_for(rule, registry, server, component,
                                        now)
                if rule.condition(value):
                    if key in self._active:
                        continue  # dedup: already firing
                    since = self._pending.setdefault(key, now)
                    if now - since >= rule.for_duration:
                        alert = self._fire(rule, server, component, now,
                                           value, since)
                        fired.append(alert)
                else:
                    self._pending.pop(key, None)
                    active = self._active.pop(key, None)
                    if active is not None:
                        self._resolve(active, now)
        return fired

    def _fire(self, rule, server, component, now, value, since):
        alert = Alert(
            rule=rule.name,
            severity=rule.severity,
            signal=rule.signal,
            server=server,
            component=component,
            fired_at=now,
            value=value,
            pending_since=since,
        )
        self.alerts.append(alert)
        self._active[(rule.name, server, component)] = alert
        self._pending.pop((rule.name, server, component), None)
        if self.bus is not None:
            self.bus.publish(
                "alert.fired",
                rule=rule.name,
                severity=rule.severity,
                signal=rule.signal,
                server=server,
                component=component,
                value=value,
            )
        for listener in self.on_fire:
            listener(alert)
        return alert

    def _resolve(self, alert, now):
        alert.resolved_at = now
        if self.bus is not None:
            self.bus.publish(
                "alert.resolved",
                rule=alert.rule,
                server=alert.server,
                component=alert.component,
                duration=now - alert.fired_at,
            )
        for listener in self.on_resolve:
            listener(alert)

    # ------------------------------------------------------------------
    def active_alerts(self):
        return [alert for alert in self.alerts if alert.active]

    def finalize(self, now):
        """End of run: resolve whatever is still firing."""
        for key in sorted(self._active, key=str):
            self._resolve(self._active[key], now)
        self._active.clear()
        self._pending.clear()
        return self.alerts


def alert_lead_times(alerts, incidents, window=300.0):
    """Seconds of warning each incident got from the alert stream.

    For every incident, the earliest alert that fired within ``window``
    seconds *before* the incident opened, on the same server (alerts
    with no server — global rules — match any incident).  Returns a
    sorted list of lead times, one per warned incident; incidents with
    no preceding alert contribute nothing (coverage is reported
    separately by callers that need it).
    """
    leads = []
    for incident in incidents:
        opened = incident.opened_at
        candidates = [
            alert.fired_at
            for alert in alerts
            if alert.fired_at <= opened
            and opened - alert.fired_at <= window
            and (
                alert.server is None
                or incident.server is None
                or alert.server == incident.server
            )
        ]
        if candidates:
            leads.append(opened - min(candidates))
    return sorted(leads)


def median(values):
    """Median of a list (None when empty) — tiny, dependency-free."""
    if not values:
        return None
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0
