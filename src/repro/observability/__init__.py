"""Incident observability: MTTR decomposition, rolling SLOs, prediction.

The layer that turns raw TraceBus events into the paper's quantitative
story: :class:`IncidentTracker` stitches fault → detection → diagnosis →
recovery → quiet into per-incident MTTR phase decompositions,
:class:`SloEngine` judges rolling availability/latency windows (publishing
``slo.violated`` back onto the bus), and the exporter renders both as
Prometheus text exposition or JSONL.  On top of that sits the predictive
half: :class:`EstimatorHub` keeps streaming per-component MTTF /
failure-rate / hazard estimates, :class:`ComponentHealthRegistry` blends
hazard + SLO burn + flap history + heap trend into bounded 0–100 health
scores, and :class:`AlertEngine` thresholds them into sticky
``alert.fired`` / ``alert.resolved`` bus events.  Everything here is
passive — it subscribes, it never schedules — so enabling observability
cannot change what a simulation does, only what it tells you.
"""

from repro.observability.cluster import (
    ClusterIncidentCorrelator,
    MetaIncident,
    ShardMetricsAggregator,
    shard_of_incident,
    shard_of_name,
    shard_windows_from_records,
    shards_from_timeline,
    timeline_shards,
)
from repro.observability.alerts import (
    Alert,
    AlertEngine,
    AlertRule,
    alert_lead_times,
    default_rules,
    median,
)
from repro.observability.estimators import (
    EstimatorHub,
    Ewma,
    FailureRateEstimator,
    MovingAverage,
    WARMUP,
)
from repro.observability.exporter import (
    health_from_timeline,
    incidents_from_timeline,
    registry_from_cluster,
    registry_from_health,
    registry_from_observability,
    render_prometheus,
    write_incidents,
)
from repro.observability.health import (
    ComponentHealthRegistry,
    HeapTrendTracker,
)
from repro.observability.incidents import (
    DEFAULT_QUIET_PERIOD,
    Incident,
    IncidentTracker,
    TRACKED_KINDS,
    aggregate_incidents,
    max_concurrent_actions,
    path_for_url,
)
from repro.observability.report import (
    summarize_alerts,
    summarize_health,
    summarize_incidents,
    summarize_shards,
    summarize_slo,
)
from repro.observability.slo import (
    SloEngine,
    SloPolicy,
    SloWindow,
    aggregate_slo,
    compute_windows,
    windows_from_records,
)

__all__ = [
    "Alert",
    "AlertEngine",
    "AlertRule",
    "ClusterIncidentCorrelator",
    "ComponentHealthRegistry",
    "DEFAULT_QUIET_PERIOD",
    "EstimatorHub",
    "Ewma",
    "FailureRateEstimator",
    "HeapTrendTracker",
    "Incident",
    "IncidentTracker",
    "MetaIncident",
    "MovingAverage",
    "ShardMetricsAggregator",
    "SloEngine",
    "SloPolicy",
    "SloWindow",
    "TRACKED_KINDS",
    "WARMUP",
    "aggregate_incidents",
    "aggregate_slo",
    "alert_lead_times",
    "compute_windows",
    "default_rules",
    "health_from_timeline",
    "incidents_from_timeline",
    "max_concurrent_actions",
    "median",
    "path_for_url",
    "registry_from_cluster",
    "registry_from_health",
    "registry_from_observability",
    "render_prometheus",
    "shard_of_incident",
    "shard_of_name",
    "shard_windows_from_records",
    "shards_from_timeline",
    "summarize_alerts",
    "summarize_health",
    "summarize_incidents",
    "summarize_shards",
    "summarize_slo",
    "timeline_shards",
    "windows_from_records",
    "write_incidents",
]
