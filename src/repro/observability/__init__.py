"""Incident observability: MTTR decomposition, rolling SLOs, exposition.

The layer that turns raw TraceBus events into the paper's quantitative
story: :class:`IncidentTracker` stitches fault → detection → diagnosis →
recovery → quiet into per-incident MTTR phase decompositions,
:class:`SloEngine` judges rolling availability/latency windows (publishing
``slo.violated`` back onto the bus), and the exporter renders both as
Prometheus text exposition or JSONL.  Everything here is passive — it
subscribes, it never schedules — so enabling observability cannot change
what a simulation does, only what it tells you.
"""

from repro.observability.exporter import (
    incidents_from_timeline,
    registry_from_observability,
    render_prometheus,
    write_incidents,
)
from repro.observability.incidents import (
    DEFAULT_QUIET_PERIOD,
    Incident,
    IncidentTracker,
    TRACKED_KINDS,
    aggregate_incidents,
    max_concurrent_actions,
    path_for_url,
)
from repro.observability.report import summarize_incidents, summarize_slo
from repro.observability.slo import (
    SloEngine,
    SloPolicy,
    SloWindow,
    aggregate_slo,
    compute_windows,
    windows_from_records,
)

__all__ = [
    "DEFAULT_QUIET_PERIOD",
    "Incident",
    "IncidentTracker",
    "SloEngine",
    "SloPolicy",
    "SloWindow",
    "TRACKED_KINDS",
    "aggregate_incidents",
    "aggregate_slo",
    "compute_windows",
    "incidents_from_timeline",
    "max_concurrent_actions",
    "path_for_url",
    "registry_from_observability",
    "render_prometheus",
    "summarize_incidents",
    "summarize_slo",
    "windows_from_records",
    "write_incidents",
]
