"""Rolling-window SLO evaluation: availability, Gaw, latency, budget burn.

The paper argues recovery is cheap when action-weighted goodput stays high
*through* a fault, not just on run-level averages — which is exactly what a
rolling SLO window measures.  :func:`compute_windows` slices a run into
consecutive fixed-width simulated-time windows and judges each against an
:class:`SloPolicy`; :class:`SloEngine` does the same live on a running
kernel, publishing ``slo.violated`` events back onto the TraceBus as
windows go bad, so violations interleave with the fault/recovery story in
exported timelines.

Taw accounting is retroactive — an operation counts good or bad only when
its *action* commits or aborts, which happens after the operation itself
(§4: all-or-nothing actions).  The live engine therefore judges window
``k`` only once the clock has cleared the *following* window, giving
in-flight actions time to land; :meth:`SloEngine.evaluate` recomputes every
full window canonically at end of run, and reports are always built from
that canonical pass.

Error-budget burn follows the usual SRE definition: with availability
target ``A``, a window burning at rate 1.0 consumes its error budget
``1 - A`` exactly; burn 10 means the window failed requests ten times
faster than the budget allows.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SloPolicy:
    """Targets one rolling window is judged against."""

    window: float = 30.0  # window width, simulated seconds
    availability_target: float = 0.999  # good / total per window
    latency_target: float = 8.0  # p99 ceiling: the §5.3 abandonment bar
    min_requests: int = 1  # quieter windows are never judged

    def __post_init__(self):
        if self.window <= 0:
            raise ValueError(f"window must be > 0, got {self.window!r}")
        if not 0 < self.availability_target <= 1:
            raise ValueError(
                "availability_target must be in (0, 1], got "
                f"{self.availability_target!r}"
            )

    @property
    def error_budget(self):
        return 1.0 - self.availability_target


@dataclass
class SloWindow:
    """One judged window ``[start, end)``."""

    start: float
    end: float
    good: int = 0
    bad: int = 0
    p50: float = None
    p99: float = None
    violated: bool = False
    reasons: list = field(default_factory=list)
    #: Copied from the judging policy so ``burn`` is self-contained.
    availability_target: float = 0.999

    @property
    def total(self):
        return self.good + self.bad

    @property
    def availability(self):
        return self.good / self.total if self.total else None

    @property
    def gaw(self):
        """Good action-weighted requests per second over the window."""
        width = self.end - self.start
        return self.good / width if width > 0 else 0.0

    @property
    def burn(self):
        """Error-budget burn rate (1.0 = consuming budget exactly on pace).

        A zero error budget (availability_target == 1.0) makes any failure
        an infinite burn; quiet windows burn nothing.
        """
        if not self.total:
            return 0.0
        failure_rate = self.bad / self.total
        budget = 1.0 - self.availability_target
        if budget <= 0:
            return float("inf") if failure_rate else 0.0
        return failure_rate / budget

    def to_dict(self):
        return {
            "start": round(self.start, 6),
            "end": round(self.end, 6),
            "good": self.good,
            "bad": self.bad,
            "availability": (
                round(self.availability, 6)
                if self.availability is not None else None
            ),
            "gaw": round(self.gaw, 3),
            "p50": round(self.p50, 4) if self.p50 is not None else None,
            "p99": round(self.p99, 4) if self.p99 is not None else None,
            "burn": (
                round(self.burn, 3)
                if self.burn != float("inf") else "inf"
            ),
            "violated": self.violated,
            "reasons": list(self.reasons),
        }


def _quantile(sorted_values, q):
    """Nearest-rank quantile of an already-sorted list (None when empty)."""
    if not sorted_values:
        return None
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def _build_window(start, end, good_series, bad_series, window_rts, policy):
    window = SloWindow(
        start=start, end=end,
        availability_target=policy.availability_target,
    )
    window.good = sum(
        v for t, v in good_series.items() if start <= t < end
    )
    window.bad = sum(
        v for t, v in bad_series.items() if start <= t < end
    )
    rts = sorted(window_rts)
    window.p50 = _quantile(rts, 0.50)
    window.p99 = _quantile(rts, 0.99)
    if window.total >= policy.min_requests:
        availability = window.availability
        if availability is not None and availability < policy.availability_target:
            window.reasons.append(
                f"availability {availability:.4f} < "
                f"{policy.availability_target:.4f}"
            )
        if window.p99 is not None and window.p99 > policy.latency_target:
            window.reasons.append(
                f"p99 {window.p99:.2f}s > {policy.latency_target:.2f}s"
            )
    window.violated = bool(window.reasons)
    return window


def compute_windows(good_series, bad_series, response_times, t_end,
                    policy=None, t_start=0.0):
    """Judge every *full* window in ``[t_start, t_end)``.

    ``good_series`` / ``bad_series`` are per-second bucket dicts in
    :meth:`TawAccounting.good_taw_series` form; ``response_times`` is a
    list of ``(completed_at, seconds)``.  Windows are half-open on both
    the bucket timestamps and the response-time stamps — the same
    ``[start, end)`` contract as :meth:`TawAccounting.requests_in_window`
    — so no request is counted twice and none falls between windows.
    A trailing partial window is never judged (its failure rate would be
    noise, not signal).
    """
    policy = policy or SloPolicy()
    windows = []
    n_windows = int((t_end - t_start) // policy.window)
    # Pre-bucket response times by window index: one pass, not one scan
    # per window.
    rts_by_window = {}
    width = policy.window
    for when, rt in response_times:
        index = int((when - t_start) // width)
        if 0 <= index < n_windows:
            rts_by_window.setdefault(index, []).append(rt)
    for k in range(n_windows):
        start = t_start + k * width
        windows.append(
            _build_window(
                start, start + width, good_series, bad_series,
                rts_by_window.get(k, ()), policy,
            )
        )
    return windows


def windows_from_records(records, policy=None, t_end=None, t_start=0.0):
    """Judge SLO windows from a recorded JSONL timeline.

    Timelines carry ``request.end`` events (ok, duration) but not the
    action grouping Taw needs, so this mode approximates Taw with
    per-request accounting: each request counts good or bad individually
    at its completion time.  For live runs the canonical Taw-weighted
    series from :class:`TawAccounting` is used instead.
    """
    good, bad, rts = {}, {}, []
    latest = t_start
    for record in records:
        if record.get("kind") != "request.end":
            t = record.get("t", 0.0)
            if t > latest:
                latest = t
            continue
        t = record.get("t", 0.0)
        if t > latest:
            latest = t
        bucket = int(t)
        if record.get("ok"):
            good[bucket] = good.get(bucket, 0) + 1
        else:
            bad[bucket] = bad.get(bucket, 0) + 1
        duration = record.get("duration")
        if duration is not None:
            rts.append((t, duration))
    if t_end is None:
        t_end = latest
    return compute_windows(good, bad, rts, t_end, policy=policy,
                           t_start=t_start)


class SloEngine:
    """Live rolling-window SLO evaluation over a running kernel.

    Entirely passive: it subscribes to ``request.end`` on the TraceBus and
    judges windows as the observed clock crosses their settle point — it
    schedules nothing on the kernel, so enabling it cannot perturb a
    simulation.  Violations publish ``slo.violated`` (a sticky kind, so
    they survive request floods in the ring buffer) and accumulate in
    :attr:`live_violations`; call :meth:`evaluate` at end of run for the
    canonical window series.
    """

    def __init__(self, taw, kernel=None, bus=None, policy=None,
                 t_start=0.0):
        self.taw = taw
        self.policy = policy or SloPolicy()
        self.t_start = t_start
        self.windows = []  # canonical, filled by evaluate()
        self.live_violations = []
        self._next_window = 0  # first not-yet-judged window index
        self.bus = bus if bus is not None else (
            kernel.trace if kernel is not None else None
        )
        self._token = None
        if self.bus is not None:
            self._token = self.bus.subscribe(
                self._on_request_end, kinds="request.end"
            )

    def detach(self):
        if self.bus is not None and self._token is not None:
            self.bus.unsubscribe(self._token)
            self._token = None

    # ------------------------------------------------------------------
    def _on_request_end(self, event):
        # Window k settles once the clock clears window k+1: Taw marks an
        # operation good/bad only when its whole action finishes, so a
        # window's counts keep moving for about one action-length after
        # the window closes.
        width = self.policy.window
        while self.t_start + (self._next_window + 2) * width <= event.t:
            self._judge_live(self._next_window)
            self._next_window += 1

    def _judge_live(self, k):
        width = self.policy.window
        start = self.t_start + k * width
        end = start + width
        window = _build_window(
            start, end,
            self.taw.good_taw_series(),
            self.taw.bad_taw_series(),
            [rt for when, rt in self.taw.response_times
             if start <= when < end],
            self.policy,
        )
        if window.violated:
            self.live_violations.append(window)
            if self.bus is not None:
                self.bus.publish(
                    "slo.violated",
                    window_start=window.start,
                    window_end=window.end,
                    availability=window.availability,
                    p99=window.p99,
                    burn=(
                        window.burn if window.burn != float("inf") else None
                    ),
                    reasons=list(window.reasons),
                )

    # ------------------------------------------------------------------
    def evaluate(self, t_end):
        """Canonical pass: judge every full window in ``[t_start, t_end)``."""
        self.windows = compute_windows(
            self.taw.good_taw_series(),
            self.taw.bad_taw_series(),
            self.taw.response_times,
            t_end,
            policy=self.policy,
            t_start=self.t_start,
        )
        return self.windows


def aggregate_slo(windows):
    """Plain-data rollup for campaign outcomes and rendered notes."""
    judged = [w for w in windows if w.total]
    violations = [w for w in windows if w.violated]
    availabilities = [
        w.availability for w in judged if w.availability is not None
    ]
    burns = [w.burn for w in judged if w.burn != float("inf")]
    return {
        "windows": len(windows),
        "judged": len(judged),
        "violations": len(violations),
        "violation_windows": [round(w.start, 1) for w in violations],
        "min_availability": (
            round(min(availabilities), 4) if availabilities else None
        ),
        "mean_gaw": (
            round(sum(w.gaw for w in judged) / len(judged), 3)
            if judged else None
        ),
        "max_burn": round(max(burns), 3) if burns else None,
    }
