"""JSONL timeline export and the run summarizer behind ``repro trace``.

One JSONL line per event, envelope keys ``t``/``seq``/``kind``/``bus`` plus
the event's own payload fields flattened alongside.  A timeline may contain
events from several buses (figure-1 runs two kernels, one per policy); the
``bus`` field keeps them tellable-apart while the summary stays readable.
"""

import json
from contextlib import contextmanager
from pathlib import Path

from repro.telemetry.spans import set_default_spans
from repro.telemetry.trace import (
    all_buses,
    begin_capture,
    end_capture,
    set_default_tracing,
)


def write_timeline(path, buses=None):
    """Write every buffered event of ``buses`` to ``path`` as JSONL.

    Events are grouped by bus (in the given order) and time-ordered within
    each bus.  Returns the number of lines written.
    """
    if buses is None:
        buses = all_buses()
    written = 0
    with open(path, "w", encoding="utf-8") as fh:
        for index, bus in enumerate(buses):
            bus_id = bus.label or index
            for event in bus.events():
                fh.write(json.dumps(event.flatten(bus=bus_id)) + "\n")
                written += 1
    return written


class TimelineError(Exception):
    """A JSONL timeline file is corrupt or not a trace timeline at all."""


def read_timeline(path):
    """Parse a JSONL timeline back into a list of flat dicts.

    Raises :class:`TimelineError` (with the offending line number) on
    malformed JSON or on records missing the ``t``/``kind`` envelope, so
    the CLI can report corrupt files as one-line errors.
    """
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TimelineError(
                    f"{path}:{lineno}: not valid JSONL ({exc.msg})"
                ) from exc
            if not isinstance(record, dict) or "t" not in record \
                    or "kind" not in record:
                raise TimelineError(
                    f"{path}:{lineno}: not a trace timeline record "
                    "(missing 't'/'kind' envelope)"
                )
            records.append(record)
    return records


def load_timeline(path):
    """Read a timeline for a CLI subcommand, with uniform error handling.

    Wraps :func:`read_timeline` so every timeline-consuming subcommand
    (``trace``, ``paths``, ``incidents``, ``slo``) reports bad input the
    same way: missing, unreadable, corrupt, and empty files all raise
    :class:`TimelineError` with a one-line message the CLI can print
    verbatim (prefixed ``error:``) instead of a traceback.
    """
    if not Path(path).exists():
        raise TimelineError(f"no such trace file: {path}")
    try:
        records = read_timeline(path)
    except OSError as exc:
        raise TimelineError(
            f"cannot read {path}: {exc.strerror}"
        ) from exc
    if not records:
        raise TimelineError(f"{path} is an empty timeline (0 events)")
    return records


@contextmanager
def capture_to_jsonl(path):
    """Enable tracing for buses created inside the block; export on exit.

    Only buses *created during* the block are exported, so timelines do not
    pick up stray events from unrelated kernels alive in the process.  The
    capture scope holds strong references: a kernel garbage-collected
    mid-run still gets its timeline written.
    """
    scope = begin_capture()
    previous = set_default_tracing(True)
    previous_spans = set_default_spans(True)
    try:
        yield scope
    finally:
        set_default_tracing(previous)
        set_default_spans(previous_spans)
        end_capture(scope)
        write_timeline(path, scope)


# ----------------------------------------------------------------------
# Summarization (the `python -m repro trace` subcommand)
# ----------------------------------------------------------------------

#: Kinds that make up the recovery timeline section.
RECOVERY_KINDS = (
    "rm.decision",
    "rm.action.end",
    "component.microreboot.begin",
    "component.microreboot.end",
    "node.restart",
)


def _fmt(value):
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, (list, tuple)):
        return "+".join(str(v) for v in value)
    return str(value)


def describe_record(record):
    """Payload fields of one record as `key=value` text, stable order."""
    skip = {"t", "seq", "kind", "bus"}
    return " ".join(
        f"{key}={_fmt(record[key])}"
        for key in sorted(record)
        if key not in skip and record[key] is not None
    )


_describe = describe_record  # internal alias kept for the summarizer below


def summarize_timeline(records, slowest=5):
    """Human-readable summary of a JSONL timeline; returns one string."""
    lines = []
    if not records:
        return "empty timeline (0 events)"

    buses = sorted({str(r.get("bus", "")) for r in records})
    t_low = min(r["t"] for r in records)
    t_high = max(r["t"] for r in records)
    lines.append(
        f"{len(records)} events from {len(buses)} bus(es), "
        f"t={t_low:.3f}..{t_high:.3f}s"
    )

    counts = {}
    for record in records:
        counts[record["kind"]] = counts.get(record["kind"], 0) + 1
    lines.append("")
    lines.append("events by kind:")
    for kind, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])):
        lines.append(f"  {count:>8}  {kind}")

    recovery = [r for r in records if r["kind"] in RECOVERY_KINDS]
    lines.append("")
    lines.append(f"recovery timeline ({len(recovery)} events):")
    for record in sorted(recovery, key=lambda r: (r["t"], r.get("seq", 0))):
        bus = record.get("bus", "")
        lines.append(
            f"  [{bus}] t={record['t']:9.3f}  {record['kind']:<28} "
            f"{_describe(record)}"
        )

    lines.append("")
    lines.extend(_failover_windows(records))

    lines.append("")
    lines.extend(_slowest_requests(records, slowest))
    return "\n".join(lines)


def _failover_windows(records):
    """Pair lb.failover.begin/end per (bus, node) into windows."""
    lines = ["failover windows:"]
    open_windows = {}  # (bus, node) -> (t, mode)
    windows = []
    redirected = sum(1 for r in records if r["kind"] == "lb.failover")
    for record in sorted(records, key=lambda r: (r["t"], r.get("seq", 0))):
        key = (record.get("bus"), record.get("node"))
        if record["kind"] == "lb.failover.begin":
            open_windows[key] = (record["t"], record.get("mode"))
        elif record["kind"] == "lb.failover.end" and key in open_windows:
            start, mode = open_windows.pop(key)
            windows.append((key[0], key[1], mode, start, record["t"]))
    for bus, node, mode, start, end in windows:
        lines.append(
            f"  [{bus}] {node}: {mode} failover "
            f"t={start:.3f}..{end:.3f}s ({end - start:.3f}s)"
        )
    for (bus, node), (start, mode) in sorted(
        open_windows.items(), key=lambda kv: kv[1][0]
    ):
        lines.append(
            f"  [{bus}] {node}: {mode} failover began t={start:.3f}s, "
            "never ended (wedged?)"
        )
    if not windows and not open_windows:
        lines.append("  (none)")
    lines.append(f"  requests redirected during failover: {redirected}")
    return lines


def _slowest_requests(records, limit):
    ends = [
        r for r in records
        if r["kind"] == "request.end" and r.get("duration") is not None
    ]
    lines = [f"slowest requests (of {len(ends)} completed):"]
    if not ends:
        lines.append("  (none)")
        return lines
    ends.sort(key=lambda r: -r["duration"])
    for record in ends[:limit]:
        ok = "ok" if record.get("ok") else f"FAILED({record.get('failure')})"
        lines.append(
            f"  [{record.get('bus', '')}] t={record['t']:9.3f}  "
            f"{record['duration']:7.3f}s  {record.get('operation')}  {ok}"
        )
    return lines
