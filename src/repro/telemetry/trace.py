"""The trace bus: typed, timestamped events in a bounded ring buffer.

Every simulation kernel owns one bus (``kernel.trace``); instrumented
components publish events through it.  Publishing is O(1) and the buffer is
bounded, so million-request runs stay O(1) memory; a disabled bus costs one
attribute check per publish and records nothing, keeping the hot path clean
for runs that do not opt in.

Event taxonomy (the kinds published by the built-in instrumentation):

========================================  =====================================
kind                                      published by / payload highlights
========================================  =====================================
``request.start`` / ``request.end``       workload client; operation, url,
                                          ok, duration, failure kind
``server.request.start`` / ``.end``       application server admission and
                                          completion; status
``component.destroy``                     container teardown; cause
``component.microreboot.begin`` / ``.end``  microreboot coordinator; level,
                                          components, duration
``detector.report``                       client-side detector flagged a
                                          response; kind, url
``rm.report`` / ``rm.decision`` /         recovery manager: report received,
``rm.action.end``                         action chosen, action finished
                                          (ok/error)
``lb.failover.begin`` / ``lb.failover``   load balancer: failover window
/ ``lb.failover.end``                     opened, one request redirected,
                                          window closed
``node.restart``                          node controller; action jvm|os
========================================  =====================================
"""

import weakref
from collections import deque
from dataclasses import dataclass, field

#: Keys reserved for the envelope when events are flattened to JSONL.
RESERVED_KEYS = ("t", "seq", "kind", "bus")

#: Rare-but-load-bearing kinds kept in a separate reserved ring: a long run
#: floods the main buffer with per-request events, and without this the
#: recovery story (a handful of events per incident) would be evicted first.
STICKY_PREFIXES = (
    "rm.",
    "component.microreboot.",
    "lb.failover",
    "lb.forward.error",
    "lb.link.",
    "lb.degraded",
    "lb.shed",
    "node.restart",
    "node.slowdown",
    "detector.mismatch",
    "fault.injected",
    "chaos.",
    "ssm.crash",
    "ssm.restart",
    "slo.",
    "alert.",
    "heap.",
    "capacity.",
    "shard.",
    "storm.",
    "reshard.",
    "cohort.migrate",
)

#: Whether newly constructed buses start enabled (see set_default_tracing).
_default_enabled = False

#: Every live bus, so an exporter can collect a whole run's timelines even
#: when the kernels are buried inside experiment rigs.
_buses = weakref.WeakSet()

#: Active capture scopes: each holds STRONG references to buses created
#: while it is open, so a timeline survives its kernel being garbage
#: collected before the capture exports it.
_capture_scopes = []


def begin_capture():
    """Start collecting strong refs to new buses; returns the scope list."""
    scope = []
    _capture_scopes.append(scope)
    return scope


def end_capture(scope):
    try:
        _capture_scopes.remove(scope)
    except ValueError:
        pass


def set_default_tracing(enabled):
    """Make buses created from now on start enabled; returns the old value.

    This is how the CLI turns on tracing for experiment runs without
    threading a flag through every rig constructor.
    """
    global _default_enabled
    previous = _default_enabled
    _default_enabled = bool(enabled)
    return previous


def tracing_enabled_by_default():
    return _default_enabled


def all_buses():
    """Every live TraceBus, in no particular order."""
    return list(_buses)


@dataclass(frozen=True)
class TraceEvent:
    """One published event."""

    t: float  # simulation time (seconds)
    seq: int  # per-bus publication sequence number
    kind: str  # dotted event type, e.g. "request.end"
    fields: dict = field(default_factory=dict)

    def flatten(self, bus=None):
        """Envelope + payload as one flat dict (for JSONL export)."""
        record = {"t": self.t, "seq": self.seq, "kind": self.kind}
        if bus is not None:
            record["bus"] = bus
        for key, value in self.fields.items():
            record[key if key not in RESERVED_KEYS else f"x_{key}"] = value
        return record


def _normalize_kinds(kinds):
    """(exact kinds frozenset, prefix tuple) from a str or iterable.

    A kind ending in ``*`` subscribes to the whole prefix, e.g.
    ``"component.*"``.
    """
    if kinds is None:
        return None, ()
    if isinstance(kinds, str):
        kinds = (kinds,)
    exact, prefixes = set(), []
    for kind in kinds:
        if kind.endswith("*"):
            prefixes.append(kind[:-1])
        else:
            exact.add(kind)
    return frozenset(exact), tuple(prefixes)


class _Subscription:
    """One subscriber: callback plus its kind filter."""

    __slots__ = ("callback", "exact", "prefixes")

    def __init__(self, callback, kinds):
        self.callback = callback
        self.exact, self.prefixes = _normalize_kinds(kinds)

    def matches(self, kind):
        if self.exact is None:
            return True
        return kind in self.exact or any(
            kind.startswith(prefix) for prefix in self.prefixes
        )


class TraceBus:
    """Bounded publish/subscribe event log attached to one kernel."""

    DEFAULT_CAPACITY = 65536
    STICKY_CAPACITY = 8192

    def __init__(self, kernel=None, capacity=DEFAULT_CAPACITY, enabled=None,
                 label=None):
        self.kernel = kernel
        self.label = label
        self.enabled = _default_enabled if enabled is None else bool(enabled)
        self._buffer = deque(maxlen=capacity)
        self._sticky = deque(maxlen=self.STICKY_CAPACITY)
        self._subscriptions = []
        self._seq = 0
        #: Total events ever published (buffered or since evicted).
        self.published = 0
        _buses.add(self)
        for scope in _capture_scopes:
            scope.append(self)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, kind, /, **fields):
        """Record one event; returns it, or None when the bus is disabled."""
        if not self.enabled:
            return None
        event = TraceEvent(
            t=self.kernel.now if self.kernel is not None else 0.0,
            seq=self._seq,
            kind=kind,
            fields=fields,
        )
        self._seq += 1
        self.published += 1
        self._buffer.append(event)
        if kind.startswith(STICKY_PREFIXES):
            self._sticky.append(event)
        for subscription in self._subscriptions:
            if subscription.matches(kind):
                subscription.callback(event)
        return event

    # ------------------------------------------------------------------
    # Subscribing
    # ------------------------------------------------------------------
    def subscribe(self, callback, kinds=None):
        """Call ``callback(event)`` on every matching publish.

        ``kinds`` is a kind, an iterable of kinds, or None for everything;
        a trailing ``*`` matches a prefix (``"rm.*"``).  Returns a token
        for :meth:`unsubscribe`.
        """
        subscription = _Subscription(callback, kinds)
        self._subscriptions.append(subscription)
        return subscription

    def unsubscribe(self, token):
        try:
            self._subscriptions.remove(token)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def capacity(self):
        return self._buffer.maxlen

    @property
    def dropped(self):
        """Events evicted from the ring buffer by newer ones."""
        return self.published - len(self._buffer)

    def __len__(self):
        return len(self._buffer)

    def events(self, kinds=None):
        """Buffered events, oldest first, optionally filtered like subscribe.

        Merges the main ring with the reserved sticky ring (recovery /
        failover kinds survive request floods), deduplicated by sequence.
        """
        if not self._sticky:
            ordered = list(self._buffer)
        else:
            merged = {event.seq: event for event in self._sticky}
            merged.update((event.seq, event) for event in self._buffer)
            ordered = [merged[seq] for seq in sorted(merged)]
        if kinds is None:
            return ordered
        matcher = _Subscription(None, kinds)
        return [e for e in ordered if matcher.matches(e.kind)]

    def clear(self):
        self._buffer.clear()
        self._sticky.clear()

    def __repr__(self):
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<TraceBus {self.label or ''} {state} "
            f"{len(self._buffer)}/{self.capacity} events>"
        )
