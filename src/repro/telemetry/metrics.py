"""Counters, gauges, and streaming histograms behind a named registry.

The histogram is a DDSketch-style log-bucketed quantile sketch: observations
land in exponentially spaced buckets, so p50/p95/p99 come back within a
configurable *relative* error (1% by default) while memory stays bounded by
the number of distinct magnitudes seen — a million response times cost a few
hundred buckets, never a million floats.
"""

import math


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0.0

    def inc(self, amount=1.0):
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount
        return self.value

    def __repr__(self):
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that can move both ways (queue depths, in-flight requests)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0.0

    def set(self, value):
        self.value = value
        return self.value

    def inc(self, amount=1.0):
        self.value += amount
        return self.value

    def dec(self, amount=1.0):
        self.value -= amount
        return self.value

    def __repr__(self):
        return f"<Gauge {self.name}={self.value}>"


class CounterFamily:
    """A set of counters keyed by one label (operation name, failure kind).

    ``label`` names the label dimension in Prometheus exposition; the
    default ``"key"`` preserves the historical output for unlabeled users.
    """

    __slots__ = ("name", "label", "_children")

    def __init__(self, name, label="key"):
        self.name = name
        self.label = label
        self._children = {}

    def inc(self, label, amount=1.0):
        if amount < 0:
            raise ValueError(f"counter family {self.name!r} cannot decrease")
        self._children[label] = self._children.get(label, 0.0) + amount
        return self._children[label]

    def get(self, label, default=0.0):
        return self._children.get(label, default)

    def as_dict(self):
        """Label → count, with integral counts as ints (dict-API drop-in)."""
        return {
            label: int(v) if float(v).is_integer() else v
            for label, v in self._children.items()
        }

    @property
    def total(self):
        return sum(self._children.values())

    def __len__(self):
        return len(self._children)

    def __repr__(self):
        return f"<CounterFamily {self.name} labels={len(self._children)}>"


class GaugeFamily:
    """A set of gauges keyed by one label (shard name, node name).

    The cluster observability plane exposes per-shard availability, load
    scores, and probe latencies as one family with a ``shard=`` label
    rather than minting one flat metric name per shard.
    """

    __slots__ = ("name", "label", "_children")

    def __init__(self, name, label="key"):
        self.name = name
        self.label = label
        self._children = {}

    def set(self, label, value):
        self._children[label] = value
        return value

    def inc(self, label, amount=1.0):
        self._children[label] = self._children.get(label, 0.0) + amount
        return self._children[label]

    def get(self, label, default=None):
        return self._children.get(label, default)

    def as_dict(self):
        return dict(self._children)

    def __len__(self):
        return len(self._children)

    def __repr__(self):
        return f"<GaugeFamily {self.name} labels={len(self._children)}>"


class Histogram:
    """Streaming quantile sketch with bounded relative error.

    Buckets are powers of ``gamma = (1+α)/(1-α)``; an observation ``v`` goes
    to bucket ``ceil(log_gamma(v))``, whose representative midpoint is within
    α of every value it absorbs.  Values at or below ``min_trackable`` share
    one exact zero-bucket.
    """

    def __init__(self, name=None, relative_accuracy=0.01,
                 min_trackable=1e-9):
        if not 0 < relative_accuracy < 1:
            raise ValueError("relative_accuracy must be in (0, 1)")
        self.name = name
        self.relative_accuracy = relative_accuracy
        gamma = (1 + relative_accuracy) / (1 - relative_accuracy)
        self._log_gamma = math.log(gamma)
        self._gamma = gamma
        self._min_trackable = min_trackable
        self._buckets = {}
        self._zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        """Record one observation (negatives clamp into the zero bucket)."""
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= self._min_trackable:
            self._zero_count += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def observe_many(self, value, n):
        """Record ``n`` identical observations in O(1).

        The batch workload engine observes whole cohorts at once — a
        thousand clicks sharing one modeled latency land as one bucket
        increment instead of a thousand :meth:`observe` calls.
        """
        if n <= 0:
            return
        self.count += n
        self.sum += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= self._min_trackable:
            self._zero_count += n
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[index] = self._buckets.get(index, 0) + n

    def merge(self, other):
        """Fold ``other``'s observations into this sketch, in place.

        Two sketches with the same ``relative_accuracy`` share bucket
        boundaries, so merging is exact: bucket counts add.  Merging an
        empty histogram is the identity (no state changes, not even
        min/max), and a merge of empties stays empty so ``quantile``
        keeps its None-on-empty contract.  Returns ``self`` for chaining
        cluster-level reductions over per-shard sketches.
        """
        if not isinstance(other, Histogram):
            raise TypeError(f"cannot merge {type(other).__name__}")
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge histograms with different relative accuracy: "
                f"{self.relative_accuracy} vs {other.relative_accuracy}"
            )
        if other.count == 0:
            return self
        self.count += other.count
        self.sum += other.sum
        if self.min is None or (other.min is not None and other.min < self.min):
            self.min = other.min
        if self.max is None or (other.max is not None and other.max > self.max):
            self.max = other.max
        self._zero_count += other._zero_count
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        return self

    @property
    def mean(self):
        return self.sum / self.count if self.count else None

    def quantile(self, q):
        """Value at quantile ``q`` in [0, 1], within the relative accuracy.

        An empty histogram has no quantiles: returns None (never raises),
        and every consumer — :meth:`percentiles`, the registry snapshot,
        report rendering — must tolerate the None.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * (self.count - 1)
        if rank < self._zero_count:
            return 0.0
        cumulative = self._zero_count
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative > rank:
                # Bucket (gamma^(i-1), gamma^i]: midpoint minimizes error.
                return 2 * self._gamma ** index / (self._gamma + 1)
        return self.max

    def percentiles(self):
        """The standard p50/p95/p99 summary (all None when empty)."""
        if self.count == 0:
            return {"p50": None, "p95": None, "p99": None}
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    @property
    def bucket_count(self):
        """Distinct buckets in use — the sketch's actual memory footprint."""
        return len(self._buckets) + (1 if self._zero_count else 0)

    def __repr__(self):
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Asking twice for the same name returns the same object; asking for the
    same name as a different metric type is a bug and raises.
    """

    def __init__(self):
        self._metrics = {}

    def _get_or_create(self, name, factory, metric_type):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, metric_type):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {metric_type.__name__}"
            )
        return metric

    def counter(self, name):
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name):
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def family(self, name, label="key"):
        return self._get_or_create(
            name, lambda: CounterFamily(name, label=label), CounterFamily
        )

    def gauge_family(self, name, label="key"):
        return self._get_or_create(
            name, lambda: GaugeFamily(name, label=label), GaugeFamily
        )

    def histogram(self, name, relative_accuracy=0.01):
        return self._get_or_create(
            name,
            lambda: Histogram(name, relative_accuracy=relative_accuracy),
            Histogram,
        )

    def get(self, name):
        return self._metrics.get(name)

    def __contains__(self, name):
        return name in self._metrics

    def __iter__(self):
        return iter(self._metrics.items())

    def names(self):
        return sorted(self._metrics)

    def snapshot(self):
        """Plain-data dump of every metric (for exports and assertions)."""
        out = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, (Counter, Gauge)):
                out[name] = metric.value
            elif isinstance(metric, (CounterFamily, GaugeFamily)):
                out[name] = metric.as_dict()
            elif isinstance(metric, Histogram):
                out[name] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "min": metric.min,
                    "max": metric.max,
                    **metric.percentiles(),
                }
        return out
