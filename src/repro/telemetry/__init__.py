"""Structured tracing and metrics for the whole stack.

The paper's argument is quantitative — Taw dips, per-component microreboot
times, detection latency — so the reproduction carries a first-class,
zero-dependency observability layer instead of per-experiment ad-hoc
counters:

* :class:`TraceBus` — every :class:`~repro.sim.kernel.Kernel` owns one.
  Components publish typed, timestamped events (``request.start``,
  ``component.microreboot.begin`` …) into a bounded ring buffer with
  optional subscriber callbacks.  Disabled by default: a run that does not
  opt in records zero events and pays one attribute check per publish.
* :class:`MetricsRegistry` — named counters, gauges, counter families and
  streaming histograms (p50/p95/p99 without storing samples) that back the
  accounting in ``workload.metrics``, ``cluster.load_balancer`` and
  ``core.recovery_manager``.
* JSONL timeline export plus ``python -m repro trace <file>`` to summarize
  a run (recovery timeline, failover windows, slowest requests).
"""

from repro.telemetry.export import (
    TimelineError,
    capture_to_jsonl,
    load_timeline,
    read_timeline,
    summarize_timeline,
    write_timeline,
)
from repro.telemetry.metrics import (
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import (
    RequestPath,
    Span,
    SpanCollector,
    TraceContext,
    set_default_spans,
    spans_enabled_by_default,
)
from repro.telemetry.trace import (
    TraceBus,
    TraceEvent,
    all_buses,
    set_default_tracing,
    tracing_enabled_by_default,
)

__all__ = [
    "Counter",
    "CounterFamily",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "MetricsRegistry",
    "RequestPath",
    "Span",
    "SpanCollector",
    "TimelineError",
    "TraceBus",
    "TraceContext",
    "TraceEvent",
    "all_buses",
    "capture_to_jsonl",
    "load_timeline",
    "read_timeline",
    "set_default_spans",
    "set_default_tracing",
    "spans_enabled_by_default",
    "summarize_timeline",
    "tracing_enabled_by_default",
    "write_timeline",
]
