"""Causal request-path spans: who actually called whom, per request.

PR 1's :class:`~repro.telemetry.trace.TraceBus` records flat events; this
layer adds *causality*.  A per-request :class:`TraceContext` travels on the
:class:`~repro.appserver.http.HttpRequest` through the load balancer, the
application server, and every container invocation, recording one
:class:`Span` per component entered (component, start/end sim-time,
outcome).  When the request finishes — the issuing client knows the
detector verdict, so it closes the trace — the completed path feeds two
consumers:

* the kernel's TraceBus: one ``span`` event per span plus one ``path.end``
  summary event, so ``--trace`` JSONL timelines carry observed call trees
  that ``repro paths`` can render;
* registered *path sinks* (the :class:`~repro.diagnosis.PathAnalyzer`),
  which aggregate failed-vs-successful path membership for Pinpoint-style
  fault localization feeding the recovery manager.

Memory stays bounded: spans live only inside their trace context, which is
dropped when the request finishes (sinks receive a compact
:class:`RequestPath`, never the span objects), a per-trace span cap guards
against runaway recursion, and the collector itself holds no references to
open traces — an abandoned request's context is garbage the moment its
request object is.

A disabled collector (the default) costs one attribute check per request
at the server edge and one ``ctx.trace is None`` check per component call,
mirroring the disabled-TraceBus contract that keeps the telemetry layer
inside its <10% overhead budget.
"""

from itertools import count

#: Whether newly constructed collectors start enabled (see
#: :func:`set_default_spans`); flipped by the CLI for ``--trace`` runs.
_default_enabled = False


def set_default_spans(enabled):
    """Make collectors created from now on start enabled; returns the old
    value.  The span analogue of ``trace.set_default_tracing``."""
    global _default_enabled
    previous = _default_enabled
    _default_enabled = bool(enabled)
    return previous


def spans_enabled_by_default():
    return _default_enabled


class Span:
    """One component's participation in one request."""

    __slots__ = ("span_id", "parent_id", "component", "started_at",
                 "finished_at", "outcome")

    def __init__(self, span_id, parent_id, component, started_at):
        self.span_id = span_id
        self.parent_id = parent_id
        self.component = component
        self.started_at = started_at
        #: None while the span is open (the request may abandon it there:
        #: a deadlocked component holds its span until the thread is
        #: killed, and the trace may finish first).
        self.finished_at = None
        #: "ok", an exception class name, or None while open.
        self.outcome = None

    @property
    def ok(self):
        return self.outcome == "ok"

    @property
    def failed(self):
        return self.outcome is not None and self.outcome != "ok"

    def __repr__(self):
        return (
            f"<Span {self.span_id} {self.component} "
            f"{self.outcome or 'open'}>"
        )


class RequestPath:
    """Compact record of one completed request's observed call path.

    This — not the span objects — is what path sinks receive: component
    membership in first-entry order, the observed parent→child call edges,
    the components whose invocation raised, and the client-side verdict.
    """

    __slots__ = ("trace_id", "url", "operation", "client_id", "node", "ok",
                 "failure", "started_at", "finished_at", "components",
                 "edges", "failed_in")

    def __init__(self, trace_id, url, operation, client_id, node, ok,
                 failure, started_at, finished_at, components, edges,
                 failed_in):
        self.trace_id = trace_id
        self.url = url
        self.operation = operation
        self.client_id = client_id
        self.node = node
        self.ok = ok
        self.failure = failure
        self.started_at = started_at
        self.finished_at = finished_at
        self.components = components  # tuple, first-entry order, unique
        self.edges = edges  # tuple of (parent_component, child_component)
        self.failed_in = failed_in  # components whose invocation raised

    @property
    def duration(self):
        return self.finished_at - self.started_at

    def __repr__(self):
        state = "ok" if self.ok else f"FAILED({self.failure})"
        return (
            f"<RequestPath {self.trace_id} {self.operation} "
            f"{'>'.join(self.components)} {state}>"
        )


class TraceContext:
    """Per-request span book-keeping, carried on the HttpRequest."""

    __slots__ = ("collector", "trace_id", "url", "operation", "client_id",
                 "started_at", "node", "spans", "finished", "truncated")

    def __init__(self, collector, trace_id, url, operation, client_id):
        self.collector = collector
        self.trace_id = trace_id
        self.url = url
        self.operation = operation
        self.client_id = client_id
        self.started_at = collector.now
        self.node = None  # set by the first server that admits the request
        self.spans = []
        self.finished = False
        self.truncated = False

    # ------------------------------------------------------------------
    # Span lifecycle (containers call these)
    # ------------------------------------------------------------------
    def start_span(self, component, parent=None):
        """Open a span for ``component``; returns None past the span cap.

        Callers must tolerate None (and :meth:`finish_span` does): a trace
        that blew its cap keeps its truncation visible instead of growing
        without bound under runaway recursion.
        """
        if self.finished:
            return None
        if len(self.spans) >= self.collector.max_spans_per_trace:
            self.truncated = True
            return None
        span = Span(
            span_id=len(self.spans),
            parent_id=parent.span_id if parent is not None else None,
            component=component,
            started_at=self.collector.now,
        )
        self.spans.append(span)
        return span

    def finish_span(self, span, outcome=None):
        """Close ``span`` (no-op for None) with "ok" or an error name."""
        if span is None:
            return
        span.finished_at = self.collector.now
        span.outcome = "ok" if outcome is None else outcome

    # ------------------------------------------------------------------
    # Trace completion (the issuing client calls this)
    # ------------------------------------------------------------------
    def finish(self, ok, failure=None):
        """Close the trace with the client-side verdict; returns the
        :class:`RequestPath` delivered to the sinks (or None if already
        closed)."""
        if self.finished:
            return None
        self.finished = True
        return self.collector._finish(self, bool(ok), failure)

    def __repr__(self):
        return (
            f"<TraceContext {self.trace_id} {self.operation} "
            f"{len(self.spans)} spans>"
        )


class SpanCollector:
    """Creates, completes, and fans out request traces for one kernel."""

    MAX_SPANS_PER_TRACE = 256

    def __init__(self, kernel=None, enabled=None,
                 max_spans_per_trace=MAX_SPANS_PER_TRACE):
        self.kernel = kernel
        self.enabled = _default_enabled if enabled is None else bool(enabled)
        self.max_spans_per_trace = max_spans_per_trace
        #: Callables invoked with each completed RequestPath.
        self.sinks = []
        self.traces_started = 0
        self.paths_recorded = 0
        self._trace_ids = count(1)

    @property
    def now(self):
        return self.kernel.now if self.kernel is not None else 0.0

    def add_sink(self, sink):
        """Register ``sink(request_path)``; returns it for unregistering."""
        self.sinks.append(sink)
        return sink

    def remove_sink(self, sink):
        try:
            self.sinks.remove(sink)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Trace creation
    # ------------------------------------------------------------------
    def start_trace(self, url, operation, client_id=0):
        """New TraceContext (even when disabled — use :meth:`attach`)."""
        self.traces_started += 1
        return TraceContext(
            self, next(self._trace_ids), url, operation, client_id
        )

    def attach(self, request, node=None):
        """Ensure ``request`` carries a trace context; no-op when disabled.

        Idempotent across hops: the load balancer and the server may both
        call this, and only the first creates the context.  ``node`` names
        the serving node on first admission (failover redirects keep the
        node that actually served the request).
        """
        if not self.enabled:
            return None
        trace = request.trace
        if trace is None:
            trace = self.start_trace(
                url=request.url,
                operation=request.operation,
                client_id=request.client_id,
            )
            request.trace = trace
        if node is not None and trace.node is None:
            trace.node = node
        return trace

    # ------------------------------------------------------------------
    # Trace completion
    # ------------------------------------------------------------------
    def _finish(self, trace, ok, failure):
        components, edges, failed_in = [], [], []
        by_id = {span.span_id: span for span in trace.spans}
        for span in trace.spans:
            if span.component not in components:
                components.append(span.component)
            if span.parent_id is not None:
                edge = (by_id[span.parent_id].component, span.component)
                if edge not in edges:
                    edges.append(edge)
            if span.failed and span.component not in failed_in:
                failed_in.append(span.component)
        path = RequestPath(
            trace_id=trace.trace_id,
            url=trace.url,
            operation=trace.operation,
            client_id=trace.client_id,
            node=trace.node,
            ok=ok,
            failure=failure,
            started_at=trace.started_at,
            finished_at=self.now,
            components=tuple(components),
            edges=tuple(edges),
            failed_in=tuple(failed_in),
        )
        self.paths_recorded += 1
        self._publish(trace, path)
        for sink in self.sinks:
            sink(path)
        return path

    def _publish(self, trace, path):
        """Mirror the trace into the TraceBus (no-op when bus disabled)."""
        bus = self.kernel.trace if self.kernel is not None else None
        if bus is None or not bus.enabled:
            return
        for span in trace.spans:
            bus.publish(
                "span",
                trace=trace.trace_id,
                span=span.span_id,
                parent=span.parent_id,
                component=span.component,
                start=span.started_at,
                end=span.finished_at,
                outcome=span.outcome or "open",
            )
        bus.publish(
            "path.end",
            trace=trace.trace_id,
            url=path.url,
            operation=path.operation,
            client=path.client_id,
            node=path.node,
            ok=path.ok,
            failure=path.failure,
            duration=path.duration,
            components=path.components,
            failed_in=path.failed_in,
            truncated=trace.truncated or None,
        )

    def __repr__(self):
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<SpanCollector {state} traces={self.traces_started} "
            f"paths={self.paths_recorded}>"
        )
