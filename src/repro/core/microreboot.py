"""The microreboot coordinator: surgical component-level recovery (§3.2).

A microreboot of a component (or set of components):

1. expands the target set to full recovery groups;
2. binds each target's JNDI name to a sentinel carrying the estimated
   recovery time (callers get ``RetryAfter``-style failures instead of
   dangling lookups);
3. optionally waits a short drain delay so in-flight requests complete
   (§6.2);
4. aborts every transaction the targets are involved in (the database
   rolls them back), destroys all extant instances, kills the shepherd
   threads executing inside the targets, releases the targets' resources,
   and discards the per-component server metadata — **but keeps the
   classloader** (static identity preserved, §3.2);
5. reinstantiates and reinitializes each component and rebinds its name;
6. nudges the garbage collector, reclaiming memory attributed to the
   targets (§8: Java lacks constant-time reclamation; the prototype calls
   the collector after a µRB).

Whole-WAR and whole-application restarts reuse the same machinery at
coarser grain; the JVM level lives on the server/node objects.
"""

from dataclasses import dataclass, field

from repro.appserver.container import ContainerState
from repro.appserver.errors import AppServerError
from repro.core.recovery_groups import compute_recovery_groups
from repro.core.retry import RetryPolicy


@dataclass
class RebootEvent:
    """One recovery action, for experiment timelines and assertions."""

    started_at: float
    level: str  # "ejb" | "war" | "application"
    components: tuple
    finished_at: float = None
    crash_seconds: float = 0.0
    reinit_seconds: float = 0.0
    memory_released: int = 0
    #: Per-component breakdown of released memory (rejuvenation learning).
    memory_released_by: dict = field(default_factory=dict)

    @property
    def duration(self):
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class MicrorebootCoordinator:
    """Drives microreboots of one application on one server."""

    def __init__(self, server, app_name, retry_policy=None, honor_groups=True):
        self.server = server
        self.app_name = app_name
        self.retry_policy = retry_policy or RetryPolicy.disabled()
        #: Expanding targets to their full recovery groups is what keeps
        #: microreboots safe; disabling it exists ONLY for the ablation
        #: benchmark that demonstrates why (stale cross-container
        #: references surface immediately).
        self.honor_groups = honor_groups
        descriptors = server.descriptors_for(app_name)
        self.groups = compute_recovery_groups(descriptors)
        self._deploy_order = [d.name for d in descriptors]
        self.events = []
        self.microreboot_count = 0
        self.app_restart_count = 0

    # ------------------------------------------------------------------
    # Target expansion
    # ------------------------------------------------------------------
    def expand_targets(self, names):
        """Union of the recovery groups of ``names``, in deploy order."""
        selected = set()
        for name in names:
            if name not in self.groups:
                raise AppServerError(
                    f"cannot microreboot unknown component {name!r}"
                )
            selected |= self.groups[name] if self.honor_groups else {name}
        return [name for name in self._deploy_order if name in selected]

    def estimated_recovery_time(self, names):
        """Sentinel retry-after estimate: total crash+reinit of the set."""
        targets = self.expand_targets(names)
        total = self.retry_policy.drain_delay
        for name in targets:
            descriptor = self.server.containers[name].descriptor
            total += descriptor.crash_time + descriptor.reinit_time
        return total

    # ------------------------------------------------------------------
    # The microreboot method (invocable programmatically or "over HTTP")
    # ------------------------------------------------------------------
    def microreboot(self, names, level="ejb"):
        """Generator: microreboot the given components (and their groups)."""
        kernel = self.server.kernel
        targets = self.expand_targets(names)
        event = RebootEvent(
            started_at=kernel.now,
            level=level,
            components=tuple(targets),
        )
        estimate = self.estimated_recovery_time(names)
        kernel.trace.publish(
            "component.microreboot.begin",
            level=level,
            components=tuple(targets),
            estimate=estimate,
            server=self.server.name,
        )

        # Phase 1: sentinels up — new calls see RetryAfter(t), not errors.
        for name in targets:
            self.server.naming.bind_sentinel(name, estimate)
            self.server.containers[name].state = ContainerState.MICROREBOOTING

        # Phase 2: optional drain so in-flight requests can complete.
        if self.retry_policy.drain_delay > 0:
            yield kernel.timeout(self.retry_policy.drain_delay)

        # Phase 3: crash — abort transactions, kill threads, drop instances
        # and metadata.  The classloader is deliberately preserved.
        self.server.transactions.abort_involving(targets)
        for name in targets:
            container = self.server.containers[name]
            container.destroy(cause="microreboot")
            crash = container.descriptor.crash_time
            event.crash_seconds += crash
            yield kernel.timeout(crash)

        # Phase 4: reinitialize in deployment order and rebind names.
        for name in targets:
            container = self.server.containers[name]
            reinit = self.server.timing.sample(
                self.server.rng, container.descriptor.reinit_time
            )
            event.reinit_seconds += reinit
            yield kernel.timeout(reinit)
            container.initialize()
            self.server.naming.bind(name, name)

        # Phase 5: collect garbage attributable to the recycled components.
        yield kernel.timeout(self.server.timing.gc_pause_after_urb)
        for name in targets:
            released = self.server.heap.release_owner(name)
            event.memory_released += released
            event.memory_released_by[name] = released

        event.finished_at = kernel.now
        self.events.append(event)
        self.microreboot_count += 1
        kernel.trace.publish(
            "component.microreboot.end",
            level=level,
            components=tuple(targets),
            duration=event.duration,
            memory_released=event.memory_released,
            server=self.server.name,
        )
        return event

    def microreboot_war(self):
        """Generator: microreboot the application's web component.

        Beyond the generic machinery, WAR reinitialization sweeps the
        in-JVM session store, discarding session objects that fail
        validation — the recovery path for corrupted FastS data (Table 2).
        """
        war = self.server.web_component_name
        if war is None:
            raise AppServerError("no web component deployed")
        event = yield from self.microreboot([war], level="war")
        store = self.server.session_store
        if store is not None and hasattr(store, "sweep_invalid"):
            store.sweep_invalid()
        return event

    def restart_application(self):
        """Generator: restart all of the application's components.

        Coarser than any µRB: classloaders are discarded (statics reset)
        and the restart is batch-optimized, so it is faster than the sum of
        per-component microreboots but still an order of magnitude slower
        than one µRB (Table 3: 7.699 s).
        """
        kernel = self.server.kernel
        timing = self.server.timing
        targets = list(self._deploy_order)
        event = RebootEvent(
            started_at=kernel.now,
            level="application",
            components=tuple(targets),
        )
        kernel.trace.publish(
            "component.microreboot.begin",
            level="application",
            components=tuple(targets),
            server=self.server.name,
        )
        estimate = timing.app_restart_crash_time + timing.app_restart_reinit_time
        for name in targets:
            self.server.naming.bind_sentinel(name, estimate)
            self.server.containers[name].state = ContainerState.MICROREBOOTING
        self.server.transactions.abort_involving(targets)
        for name in targets:
            self.server.containers[name].destroy(cause="app-restart")
            self.server.classloaders.discard(name)
        event.crash_seconds = timing.app_restart_crash_time
        yield kernel.timeout(timing.app_restart_crash_time)

        reinit = timing.sample(self.server.rng, timing.app_restart_reinit_time)
        event.reinit_seconds = reinit
        yield kernel.timeout(reinit)
        for name in targets:
            container = self.server.containers[name]
            container.classloader = self.server.classloaders.loader_for(name)
            container.initialize()
            self.server.naming.bind(name, name)
        yield kernel.timeout(timing.gc_pause_after_urb)
        for name in targets:
            event.memory_released += self.server.heap.release_owner(name)
        store = self.server.session_store
        if store is not None and hasattr(store, "sweep_invalid"):
            store.sweep_invalid()

        event.finished_at = kernel.now
        self.events.append(event)
        self.app_restart_count += 1
        kernel.trace.publish(
            "component.microreboot.end",
            level="application",
            components=tuple(targets),
            duration=event.duration,
            memory_released=event.memory_released,
            server=self.server.name,
        )
        return event
