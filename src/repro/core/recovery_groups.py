"""Recovery-group computation (§3.2).

"Some EJBs cannot be microrebooted individually, because EJBs might maintain
references to other EJBs and because certain metadata relationships can span
containers.  Thus, whenever an EJB is microrebooted, we microreboot the
transitive closure of its inter-EJB dependents as a group.  To determine
these recovery groups, we examine the EJB deployment descriptors."

The descriptors' ``group_references`` edges are treated as undirected
(either endpoint being recycled invalidates the shared metadata), so a
recovery group is a connected component of that graph.
"""


def compute_recovery_groups(descriptors):
    """Map each component name to its recovery group (a frozenset).

    Components with no group references form singleton groups.  Unknown
    names appearing in ``group_references`` raise ValueError — a descriptor
    bug better caught at deploy time than during recovery.
    """
    names = {d.name for d in descriptors}
    adjacency = {name: set() for name in names}
    for descriptor in descriptors:
        for ref in descriptor.group_references:
            if ref not in names:
                raise ValueError(
                    f"{descriptor.name!r} group-references unknown component {ref!r}"
                )
            adjacency[descriptor.name].add(ref)
            adjacency[ref].add(descriptor.name)

    groups = {}
    for start in names:
        if start in groups:
            continue
        # Breadth-first closure over the undirected reference graph.
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        group = frozenset(seen)
        for member in group:
            groups[member] = group
    return groups
