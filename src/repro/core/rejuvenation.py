"""Microrejuvenation (§6.4): averting leak-induced crashes by parts.

A server-side service periodically checks available JVM memory.  When it
drops below ``Malarm``, components are microrebooted in a rolling fashion
until availability exceeds ``Msufficient``; if every component has been
recycled and memory is still short, the whole JVM is restarted.

The service has no a-priori knowledge of who leaks: it "builds a list of all
components; as components are microrebooted, the service remembers how much
memory was released by each one's µRB.  The list is kept sorted in
descending order by released memory" — so later rejuvenations try the
biggest historical leakers first.  "Remembers" is an EWMA, not the last
observation: one µRB that happened to catch a component mid-cycle (heap
nearly empty, or freshly refilled) must not reorder the whole candidate
list on its own.
"""

from collections import deque

#: memory_samples ring size: the Kernel.unhandled_failures idiom — keep a
#: bounded window plus a total count, never an unbounded list (a week-long
#: soak at a 5 s cadence would otherwise grow ~120k entries per node).
MEMORY_SAMPLE_RETENTION = 4096

#: EWMA smoothing for released_history: one observation moves the
#: remembered release 50% of the way — adapts within a couple of rounds
#: without letting a single noisy µRB rewrite the ordering.
RELEASED_ALPHA = 0.5


class RejuvenationService:
    """Memory-triggered rolling microreboots."""

    def __init__(
        self,
        kernel,
        coordinator,
        m_alarm_fraction=0.35,
        m_sufficient_fraction=0.80,
        check_interval=5.0,
    ):
        if not 0 < m_alarm_fraction < m_sufficient_fraction <= 1:
            raise ValueError(
                "need 0 < m_alarm < m_sufficient <= 1, got "
                f"{m_alarm_fraction} / {m_sufficient_fraction}"
            )
        if check_interval <= 0:
            raise ValueError(
                f"check_interval must be > 0, got {check_interval!r}"
            )
        self.kernel = kernel
        self.coordinator = coordinator
        self.m_alarm_fraction = m_alarm_fraction
        self.m_sufficient_fraction = m_sufficient_fraction
        self.check_interval = check_interval

        #: Components in the order the next rejuvenation will try them;
        #: initialized to deployment order (no leak knowledge yet).
        self.candidates = list(coordinator._deploy_order)
        #: EWMA of bytes released by each component's µRBs.
        self.released_history = {name: 0.0 for name in self.candidates}
        self.rejuvenation_rounds = 0
        self.microreboots_performed = 0
        self.jvm_restarts_performed = 0
        #: (time, available_bytes) timeline — most recent samples only.
        self.memory_samples = deque(maxlen=MEMORY_SAMPLE_RETENTION)
        #: Total samples ever taken (survives ring eviction).
        self.samples_recorded = 0
        self._process = None

    # ------------------------------------------------------------------
    @property
    def server(self):
        return self.coordinator.server

    @property
    def m_alarm(self):
        return self.server.heap.capacity * self.m_alarm_fraction

    @property
    def m_sufficient(self):
        return self.server.heap.capacity * self.m_sufficient_fraction

    def start(self):
        """Spawn the rejuvenator process (idempotent).

        Calling start() again while the service is running returns the
        existing live process — it never spawns a second rejuvenator,
        which would double the sampling cadence and race two sweeps over
        the same candidate list.  Only after the process has died (e.g. a
        kernel teardown in tests) does start() spawn a fresh one.
        """
        if self._process is None or not self._process.is_alive:
            self._process = self.kernel.process(self._run(), name="rejuvenator")
        return self._process

    # ------------------------------------------------------------------
    def _sample(self):
        self.memory_samples.append((self.kernel.now, self.server.heap.available))
        self.samples_recorded += 1

    def _run(self):
        while True:
            yield self.kernel.timeout(self.check_interval)
            self._sample()
            if self.server.heap.available < self.m_alarm:
                yield from self._rejuvenate()
                self._sample()

    def _rejuvenate(self):
        """Generator: one rejuvenation round."""
        self.rejuvenation_rounds += 1
        heap = self.server.heap
        rebooted_groups = set()
        for name in list(self.candidates):
            if heap.available >= self.m_sufficient:
                break
            group = self.coordinator.groups[name]
            if group in rebooted_groups:
                continue  # already recycled as part of an earlier member
            rebooted_groups.add(group)
            event = yield from self.coordinator.microreboot([name])
            self.microreboots_performed += 1
            for member, released in event.memory_released_by.items():
                previous = self.released_history.get(member, 0.0)
                self.released_history[member] = (
                    previous + RELEASED_ALPHA * (released - previous)
                )
        if heap.available < self.m_sufficient:
            # Every component recycled and still short: whole-JVM restart.
            yield from self.server.restart_jvm()
            self.jvm_restarts_performed += 1
        self._resort_candidates()

    def _resort_candidates(self):
        """Biggest historical leakers first for the next round."""
        self.candidates.sort(
            key=lambda name: self.released_history.get(name, 0), reverse=True
        )
