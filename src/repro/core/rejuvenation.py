"""Microrejuvenation (§6.4): averting leak-induced crashes by parts.

A server-side service periodically checks available JVM memory.  When it
drops below ``Malarm``, components are microrebooted in a rolling fashion
until availability exceeds ``Msufficient``; if every component has been
recycled and memory is still short, the whole JVM is restarted.

The service has no a-priori knowledge of who leaks: it "builds a list of all
components; as components are microrebooted, the service remembers how much
memory was released by each one's µRB.  The list is kept sorted in
descending order by released memory" — so later rejuvenations try the
biggest historical leakers first.
"""


class RejuvenationService:
    """Memory-triggered rolling microreboots."""

    def __init__(
        self,
        kernel,
        coordinator,
        m_alarm_fraction=0.35,
        m_sufficient_fraction=0.80,
        check_interval=5.0,
    ):
        if not 0 < m_alarm_fraction < m_sufficient_fraction <= 1:
            raise ValueError(
                "need 0 < m_alarm < m_sufficient <= 1, got "
                f"{m_alarm_fraction} / {m_sufficient_fraction}"
            )
        self.kernel = kernel
        self.coordinator = coordinator
        self.m_alarm_fraction = m_alarm_fraction
        self.m_sufficient_fraction = m_sufficient_fraction
        self.check_interval = check_interval

        #: Components in the order the next rejuvenation will try them;
        #: initialized to deployment order (no leak knowledge yet).
        self.candidates = list(coordinator._deploy_order)
        #: Bytes released by the most recent µRB of each component.
        self.released_history = {name: 0 for name in self.candidates}
        self.rejuvenation_rounds = 0
        self.microreboots_performed = 0
        self.jvm_restarts_performed = 0
        self.memory_samples = []  # (time, available_bytes) timeline
        self._process = None

    # ------------------------------------------------------------------
    @property
    def server(self):
        return self.coordinator.server

    @property
    def m_alarm(self):
        return self.server.heap.capacity * self.m_alarm_fraction

    @property
    def m_sufficient(self):
        return self.server.heap.capacity * self.m_sufficient_fraction

    def start(self):
        if self._process is None or not self._process.is_alive:
            self._process = self.kernel.process(self._run(), name="rejuvenator")
        return self._process

    # ------------------------------------------------------------------
    def _run(self):
        while True:
            yield self.kernel.timeout(self.check_interval)
            heap = self.server.heap
            self.memory_samples.append((self.kernel.now, heap.available))
            if heap.available < self.m_alarm:
                yield from self._rejuvenate()
                self.memory_samples.append((self.kernel.now, heap.available))

    def _rejuvenate(self):
        """Generator: one rejuvenation round."""
        self.rejuvenation_rounds += 1
        heap = self.server.heap
        rebooted_groups = set()
        for name in list(self.candidates):
            if heap.available >= self.m_sufficient:
                break
            group = self.coordinator.groups[name]
            if group in rebooted_groups:
                continue  # already recycled as part of an earlier member
            rebooted_groups.add(group)
            event = yield from self.coordinator.microreboot([name])
            self.microreboots_performed += 1
            for member, released in event.memory_released_by.items():
                self.released_history[member] = released
        if heap.available < self.m_sufficient:
            # Every component recycled and still short: whole-JVM restart.
            yield from self.server.restart_jvm()
            self.jvm_restarts_performed += 1
        self._resort_candidates()

    def _resort_candidates(self):
        """Biggest historical leakers first for the next round."""
        self.candidates.sort(
            key=lambda name: self.released_history.get(name, 0), reverse=True
        )
