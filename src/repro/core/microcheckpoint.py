"""Microcheckpointing for long-running operations (§8, "Workload").

"Microreboots thrive on workloads consisting of fine-grain, independent
requests; if a system is faced with long running operations, then
individual components could be periodically microcheckpointed to keep the
cost of µRBs low, keeping in mind the associated risk of persistent faults.
In the same vein, requests need to be sufficiently self-contained, such
that a fresh instance of a microrebooted component can pick up a request
and continue processing it where the previous instance left off."

The checkpoint store follows the crash-only rules: it lives *outside* the
components (so it survives their microreboots), hides behind a small
high-level API, and leases its entries so orphaned progress records are
garbage-collected rather than leaking forever.

The "risk of persistent faults" the paper warns about is first-class here:
checkpoints carry a generation counter, and :meth:`load` can be asked to
distrust checkpoints that have survived too many reincarnations of their
owner — the escape hatch when the checkpointed state itself is what keeps
killing the component.
"""

import copy

from repro.stores.leases import LeaseTable


class MicrocheckpointStore:
    """Progress records for resumable long-running operations."""

    #: Long-running work that has made no progress for this long is
    #: presumed abandoned and collected.
    DEFAULT_LEASE_TTL = 600.0

    def __init__(self, kernel, lease_ttl=DEFAULT_LEASE_TTL,
                 max_resumptions=None):
        self.kernel = kernel
        self.leases = LeaseTable(kernel, lease_ttl)
        #: When set, checkpoints resumed more than this many times are
        #: discarded instead of returned (the persistent-fault guard).
        self.max_resumptions = max_resumptions
        self._checkpoints = {}  # key -> {"progress": ..., "resumptions": n}
        self.saves = 0
        self.resumes = 0
        self.discards = 0

    def __len__(self):
        self._gc()
        return len(self._checkpoints)

    # ------------------------------------------------------------------
    def save(self, key, progress):
        """Record (or overwrite) the progress of operation ``key``.

        ``progress`` must be self-contained (copied on the way in and out):
        a fresh instance on any node must be able to continue from it.
        """
        self.saves += 1
        entry = self._checkpoints.get(key)
        resumptions = entry["resumptions"] if entry else 0
        self._checkpoints[key] = {
            "progress": copy.deepcopy(progress),
            "resumptions": resumptions,
        }
        self.leases.grant(key)

    def load(self, key):
        """The saved progress (a copy), or None.

        Each successful load counts as a resumption; if the checkpoint has
        been resumed ``max_resumptions`` times already, it is presumed to
        be carrying the fault that keeps killing its owner and is discarded
        (returning None, i.e. "start over").
        """
        self._gc()
        entry = self._checkpoints.get(key)
        if entry is None or not self.leases.is_live(key):
            self._drop(key)
            return None
        if (
            self.max_resumptions is not None
            and entry["resumptions"] >= self.max_resumptions
        ):
            self._drop(key)
            return None
        entry["resumptions"] += 1
        self.resumes += 1
        self.leases.renew(key)
        return copy.deepcopy(entry["progress"])

    def complete(self, key):
        """The operation finished: its progress record is obsolete."""
        self._drop(key)

    def _drop(self, key):
        if self._checkpoints.pop(key, None) is not None:
            self.discards += 1
        self.leases.release(key)

    def _gc(self):
        for key in self.leases.collect_expired():
            if self._checkpoints.pop(key, None) is not None:
                self.discards += 1
