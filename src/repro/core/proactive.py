"""Proactive rejuvenation: health alerts → preemptive µRBs.

The reactive pipeline — §6.4 rejuvenation included — waits for a
threshold to be crossed: memory below ``Malarm``, scores above the RM's
threshold.  This policy closes the predictive loop the ROADMAP asked
for: the observability layer's alert engine
(:mod:`repro.observability.alerts`) predicts trouble (a heap trend that
will cross the rejuvenation alarm, a component whose blended health
score collapsed), and the policy answers by scheduling a *preemptive*
microreboot through :meth:`RecoveryManager.preempt` — which keeps every
reactive safeguard in force (per-target backoff, flap quarantine, the
shared storm limiter, recovery-group expansion) while leaving reactive
incident state untouched.

One policy instance runs per node.  It owns the node's **heap monitor**:
a kernel process that samples ``server.heap`` every ``check_interval``
and publishes ``heap.sample`` bus events — the feed the health
registry's trend tracker (and therefore the ``heap-exhaustion-predicted``
alert) runs on.  The policy is the *active* half of the predictive
stack: the estimators/health/alerts layers stay passive subscribers, and
everything that schedules kernel work lives here, where acting is the
point.

``shadow=True`` keeps the monitor (so alerts still fire and lead time is
measurable) but never acts — the A/B control arm: a shadow run's
workload outcome must be identical to the same rig without prediction,
which is exactly what the health-prediction benchmark gates.

Against a *continuing* leak (the injector's per-invocation hooks
survive µRBs by design) a preemptive µRB is periodic maintenance, not a
cure: each one empties the leaker's heap attribution cheaply — sessions
preserved, one component offline for ~fractions of a second — instead
of letting the node hit OOM and pay a whole-JVM restart plus the failed
requests of full exhaustion.  The per-target ``cooldown`` sets that
maintenance period's floor so one noisy alert stream cannot µRB-loop a
component (the RM's backoff enforces the same when hardening is on).
"""

from repro.appserver.memory import OWNER_EXTERNAL, OWNER_SERVER

#: Alert rules the policy acts on by default.  Only the heap-trend rule:
#: it names a node, and the heap's owner attribution names the leaker —
#: a precise target.  ``component-health-low`` is deliberately *not* a
#: default trigger: incident hazard implicates every component on a
#: failed URL's path, so acting on it µRBs innocent bystanders (and
#: their whole recovery groups).  The global error-budget rule names no
#: target at all.  Opt into broader triggers via ``trigger_rules=``.
DEFAULT_TRIGGER_RULES = ("heap-exhaustion-predicted",)


class ProactiveRejuvenationPolicy:
    """Per-node policy: monitor the heap, act on health alerts."""

    def __init__(
        self,
        kernel,
        rm,
        engine=None,
        check_interval=5.0,
        cooldown=30.0,
        shadow=False,
        trigger_rules=DEFAULT_TRIGGER_RULES,
    ):
        if check_interval <= 0:
            raise ValueError(
                f"check_interval must be > 0, got {check_interval!r}"
            )
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown!r}")
        self.kernel = kernel
        self.rm = rm
        self.check_interval = check_interval
        self.cooldown = cooldown
        self.shadow = shadow
        self.trigger_rules = tuple(trigger_rules)
        self.engine = engine
        self.alerts_seen = 0
        self.preempts_dispatched = 0
        self.preempts_declined = 0
        self._last_preempt = {}  # component -> time of last dispatch
        self._process = None
        if engine is not None:
            engine.on_fire.append(self.on_alert)

    @property
    def server(self):
        return self.rm.server

    # ------------------------------------------------------------------
    # The heap monitor (feeds the health registry's trend tracker)
    # ------------------------------------------------------------------
    def start(self):
        """Spawn the heap-sampling monitor process (idempotent)."""
        if self._process is None or not self._process.is_alive:
            self._process = self.kernel.process(
                self._monitor(), name=f"proactive-monitor-{self.server.name}"
            )
        return self._process

    def _monitor(self):
        while True:
            yield self.kernel.timeout(self.check_interval)
            heap = self.server.heap
            self.kernel.trace.publish(
                "heap.sample",
                server=self.server.name,
                available=heap.available,
                capacity=heap.capacity,
            )
            # Level-triggered retry: an alert firing is an edge, but the
            # RM may have been busy (or the target briefly in backoff) at
            # that instant — and a declined preempt would otherwise stay
            # declined until the alert resolves and re-fires, which for a
            # heap alert means *after* the exhaustion it predicted.  As
            # long as a trigger alert is still active, keep trying.
            if not self.shadow and self.engine is not None:
                for alert in self.engine.active_alerts():
                    self._consider(alert)

    # ------------------------------------------------------------------
    # Acting on alerts
    # ------------------------------------------------------------------
    def _target_for(self, alert):
        """The component a fired alert implicates on *this* node.

        Component-scoped alerts name their target directly; server-scoped
        heap alerts get the biggest leaker the platform attributes to an
        actual component (the same §6.4 heuristic the rejuvenation
        service and the RM's resource-exhaustion diagnosis use).
        """
        if alert.component is not None:
            if alert.component in self.server.containers:
                return alert.component
            return None
        for owner in self.server.heap.owners_by_leak():
            if owner in (OWNER_SERVER, OWNER_EXTERNAL):
                continue
            if owner in self.server.containers:
                return owner
        return None

    def on_alert(self, alert):
        """AlertEngine ``on_fire`` listener: maybe preempt."""
        self.alerts_seen += 1
        if self.shadow:
            return None
        return self._consider(alert)

    def _consider(self, alert):
        """Preempt for ``alert`` if it implicates this node and the
        target is out of cooldown; silently decline otherwise."""
        if alert.rule not in self.trigger_rules:
            return None
        if alert.server is not None and alert.server != self.server.name:
            return None
        component = self._target_for(alert)
        if component is None:
            self.preempts_declined += 1
            return None
        now = self.kernel.now
        last = self._last_preempt.get(component)
        if last is not None and now - last < self.cooldown:
            self.preempts_declined += 1
            return None
        action = self.rm.preempt(component)
        if action is None:
            self.preempts_declined += 1
            return None
        self._last_preempt[component] = now
        self.preempts_dispatched += 1
        return action

    def stats(self):
        return {
            "alerts_seen": self.alerts_seen,
            "preempts_dispatched": self.preempts_dispatched,
            "preempts_declined": self.preempts_declined,
        }
