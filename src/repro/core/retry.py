"""Transparent call-retry configuration (§6.2).

HTTP/1.1 offers return code 503 with a ``Retry-After`` header.  During a
µRB the component's JNDI name is bound to a sentinel; a servlet that hits
the sentinel while processing an *idempotent* request answers
``503 Retry-After`` and the client re-issues the call once the component is
expected to be back.  An optional drain delay between sentinel rebind and
the start of the µRB lets in-flight requests complete.
"""

from dataclasses import dataclass


@dataclass
class RetryPolicy:
    """Knobs for masking microreboots from end users.

    Attributes:
        enabled: servlets answer 503+Retry-After instead of failing when an
            idempotent request hits a microrebooting component.
        retry_after: seconds the server tells clients to wait.  The paper
            uses a fixed ``[Retry-After 2 seconds]``.
        max_retries: how many times a client re-issues before giving up.
        drain_delay: seconds between binding the sentinel and destroying
            the component, letting requests already inside the component
            complete (the paper evaluates 0 and 200 ms, Table 6).
    """

    enabled: bool = False
    retry_after: float = 2.0
    max_retries: int = 3
    drain_delay: float = 0.0

    def __post_init__(self):
        # A policy with nonsensical knobs does not fail at construction
        # time on its own — it misbehaves mid-run (negative timeouts
        # scheduled in the kernel, clients looping forever), which is far
        # harder to diagnose.  Reject it here instead.
        if self.retry_after < 0:
            raise ValueError(
                f"retry_after must be >= 0 seconds, got {self.retry_after!r}"
            )
        if self.drain_delay < 0:
            raise ValueError(
                f"drain_delay must be >= 0 seconds, got {self.drain_delay!r}"
            )
        if self.max_retries < 1:
            raise ValueError(
                f"max_retries must be a positive count, got {self.max_retries!r}"
            )

    @classmethod
    def disabled(cls):
        """The paper's baseline: no masking."""
        return cls(enabled=False)

    @classmethod
    def retry_only(cls):
        """Table 6's "Retry" column: 503-based retry, no drain delay."""
        return cls(enabled=True, drain_delay=0.0)

    @classmethod
    def delay_and_retry(cls):
        """Table 6's "Delay & retry" column: retry plus a 200 ms drain."""
        return cls(enabled=True, drain_delay=0.2)
