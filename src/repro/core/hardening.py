"""Recovery-pipeline hardening: backoff, quarantine, storm limiting.

The paper's evaluation (§5.1, Table 2) injects one fault at a time and
implicitly assumes the recovery pipeline itself is well behaved.  Under
correlated faults that assumption breaks in three characteristic ways:

* **reboot loops** — a component that is re-broken faster than it can be
  microrebooted gets recycled over and over, and every cycle kills threads
  and aborts transactions (collateral failures for innocent requests);
* **recovery storms** — a shared-infrastructure fault (session store
  outage, load-balancer link trouble) makes *every* node's monitor scores
  cross threshold at once, so the whole cluster reboots simultaneously and
  availability drops to zero even though no node was actually broken;
* **degraded-node pile-ups** — a slow (not dead) node keeps accepting
  traffic; requests queue behind the slowdown until they time out, which
  the detectors read as failures, which triggers reboots of a node whose
  only crime was being slow.

This module holds the knobs (:class:`HardeningPolicy`) and the one piece
of genuinely shared state (:class:`RecoveryStormLimiter`).  The mechanisms
live where the decisions are made: exponential per-target backoff and
flap-detection quarantine in
:class:`~repro.core.recovery_manager.RecoveryManager`, degraded-node load
shedding in :class:`~repro.cluster.load_balancer.LoadBalancer`.

Everything is off by default (``HardeningPolicy.disabled()``), so the
paper's Table 1–6 / Figure 1–6 reproductions run the original, unhardened
pipeline unchanged.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class HardeningPolicy:
    """Knobs for the hardened recovery pipeline.

    Attributes:
        enabled: master switch; disabled reproduces the paper's pipeline.
        backoff_base: seconds a just-recovered target is protected from
            another recovery of the same target.
        backoff_factor: multiplier applied for every *repeat* recovery of
            the same target inside ``flap_window``.
        backoff_max: ceiling for the per-target backoff interval.
        flap_threshold: flap repeats for the same target within
            ``flap_window`` before the target is declared flapping and
            quarantined instead of rebooted again.  A repeat is either a
            completed recovery of the target or a (debounced) demand to
            recover it again while it is still in backoff.
        flap_window: sliding window (seconds) for both the repeat counter
            behind the exponential backoff and the flap detector.
        flap_debounce: minimum seconds between counted repeats of the same
            target, so one burst of failure reports cannot register as
            several independent flap pulses.
        quarantine_ttl: how long a quarantined component answers fast
            ``503 Retry-After`` (via its naming sentinel) instead of being
            invoked — and instead of triggering further recoveries.
        storm_limit: cluster-wide cap on *concurrent* recovery actions.
        storm_window: sliding window (seconds) for the rapid-fire cap.
        storm_window_limit: cap on recovery actions *started* within
            ``storm_window`` — looser than ``storm_limit`` (serial
            recoveries are normal; a cluster-wide stampede is not).
        parallel_recovery: run the recovery manager's dependency-aware
            parallel scheduler — independent components microreboot
            concurrently (the storm limiter is the global concurrency
            cap) while actions within one dependency group stay
            serialized on a per-group escalation ladder.
        shed_degraded: the load balancer sheds or reroutes
            non-session-critical requests away from degraded nodes.
        shed_latency: mean forwarded-response latency (seconds) above
            which the balancer marks a node degraded.
        shed_failure_threshold: forward failures inside the latency sample
            window that also mark a node degraded.
        degraded_ttl: seconds a node stays marked degraded after the last
            bad observation.
        shed_retry_after: ``Retry-After`` seconds on shed responses.
        latency_samples: per-node response-time samples the balancer keeps
            (and the minimum count before it will judge a node degraded).
    """

    enabled: bool = False
    #: Long enough to cover one full µRB + re-detection cycle (scores must
    #: re-cross the threshold from zero, which takes the detectors tens of
    #: seconds): a target re-implicated inside this interval is flapping,
    #: not freshly broken.
    backoff_base: float = 40.0
    backoff_factor: float = 2.0
    backoff_max: float = 120.0
    flap_threshold: int = 3
    flap_window: float = 180.0
    flap_debounce: float = 5.0
    quarantine_ttl: float = 60.0
    storm_limit: int = 2
    storm_window: float = 60.0
    storm_window_limit: int = 8
    parallel_recovery: bool = False
    shed_degraded: bool = True
    shed_latency: float = 0.4
    shed_failure_threshold: int = 6
    degraded_ttl: float = 30.0
    shed_retry_after: float = 2.0
    latency_samples: int = 10

    def __post_init__(self):
        # Same contract as RetryPolicy: bad knobs fail loudly at
        # construction, not silently mid-campaign.
        for name in ("backoff_base", "backoff_max", "flap_window",
                     "flap_debounce", "quarantine_ttl", "storm_window",
                     "shed_latency", "degraded_ttl", "shed_retry_after"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value!r}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1.0, got {self.backoff_factor!r}"
            )
        for name in ("flap_threshold", "storm_limit", "storm_window_limit",
                     "shed_failure_threshold", "latency_samples"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value!r}")

    @classmethod
    def disabled(cls):
        """The paper's pipeline: no backoff, quarantine, or shedding."""
        return cls(enabled=False)

    @classmethod
    def hardened(cls):
        """Every safeguard on, with the defaults above."""
        return cls(enabled=True)

    @classmethod
    def parallel(cls):
        """Hardened defaults plus the dependency-aware parallel scheduler."""
        return cls(enabled=True, parallel_recovery=True)


class RecoveryStormLimiter:
    """Cluster-wide cap on concurrent / in-window recovery actions.

    One limiter instance is shared by every node's recovery manager; each
    manager asks :meth:`admit` before executing an action and calls
    :meth:`release` when the action finishes.  Denied managers simply skip
    the action — their failure scores survive, so recovery is *deferred*
    until the window frees up, not cancelled.
    """

    def __init__(self, kernel, limit=2, window=60.0, window_limit=8):
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit!r}")
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window!r}")
        if window_limit < limit:
            raise ValueError(
                f"window_limit must be >= limit, got {window_limit!r}"
            )
        self.kernel = kernel
        self.limit = limit
        self.window = window
        self.window_limit = window_limit
        self.active = 0
        self.denied = 0
        self.admitted = 0
        self._admit_times = []

    def _in_window(self):
        horizon = self.kernel.now - self.window
        self._admit_times = [t for t in self._admit_times if t >= horizon]
        return len(self._admit_times)

    def admit(self, who=""):
        """True if another recovery action may start right now."""
        if self.active >= self.limit or self._in_window() >= self.window_limit:
            self.denied += 1
            self.kernel.trace.publish(
                "rm.storm.denied",
                who=who,
                active=self.active,
                in_window=len(self._admit_times),
                limit=self.limit,
            )
            return False
        self.active += 1
        self.admitted += 1
        self._admit_times.append(self.kernel.now)
        return True

    def release(self):
        self.active = max(0, self.active - 1)
