"""The component dependency graph behind dependency-aware recovery.

The recursive policy (§4) recovers one target at a time, so MTTR under a
multi-component failure grows linearly with the number of failed
components.  Recovering *independent* components concurrently is safe —
the follow-on parallel-recovery argument — but only when "independent" is
judged against the real dependency structure:

* **static edges** come from the deployment descriptors: ``references``
  (session bean → the beans it calls) and ``group_references`` (the §3.2
  recovery-group coupling, treated as undirected because either endpoint
  being recycled invalidates the shared metadata);
* **live edges** come from the Pinpoint-style
  :class:`~repro.diagnosis.path_analysis.PathAnalyzer`, whose observed
  call paths surface dependencies the descriptors never declared.

Two target sets *conflict* — and their recoveries must stay serialized —
when they intersect, or when any component of one can reach a component of
the other along the merged edge set in either direction
(ancestor/descendant).  Components with no such relationship form
independent recovery domains and may microreboot concurrently.

Everything here is deterministic: iteration is over sorted names, so the
same descriptors and observations always produce the same partition and
the same group keys — part of the same-seed ⇒ same-trace contract.
"""

from repro.core.recovery_groups import compute_recovery_groups


class RecoveryGraph:
    """Merged static + observed dependency graph over one application.

    Args:
        descriptors: the application's deployment descriptors.
        analyzer: optional :class:`PathAnalyzer`; its
            :meth:`dependency_graph` contributes live observed call edges
            (re-read on every query, so the graph tracks the analyzer's
            sliding window).
    """

    def __init__(self, descriptors, analyzer=None):
        self.analyzer = analyzer
        self.nodes = tuple(sorted(d.name for d in descriptors))
        self.groups = compute_recovery_groups(descriptors)
        #: Static adjacency (directed): references point caller → callee;
        #: group references couple both ways.
        self._static = {name: set() for name in self.nodes}
        for descriptor in descriptors:
            for ref in descriptor.references:
                if ref in self._static:
                    self._static[descriptor.name].add(ref)
            for ref in descriptor.group_references:
                self._static[descriptor.name].add(ref)
                self._static[ref].add(descriptor.name)

    # ------------------------------------------------------------------
    # Edges and reachability
    # ------------------------------------------------------------------
    def _adjacency(self):
        """Static edges merged with the analyzer's observed call edges."""
        adjacency = {name: set(edges) for name, edges in self._static.items()}
        if self.analyzer is not None:
            for parent, children in self.analyzer.dependency_graph().items():
                for child in children:
                    if parent != child:
                        adjacency.setdefault(parent, set()).add(child)
        return adjacency

    def descendants(self, name):
        """Transitive closure of ``name`` over the merged edges."""
        adjacency = self._adjacency()
        seen = set()
        frontier = [name]
        while frontier:
            node = frontier.pop()
            for child in adjacency.get(node, ()):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        seen.discard(name)
        return seen

    def related(self, a, b):
        """True when ``a`` and ``b`` must never recover concurrently."""
        if a == b:
            return True
        if self.groups.get(a) is not None and self.groups.get(a) == self.groups.get(b):
            return True
        return b in self.descendants(a) or a in self.descendants(b)

    def conflicts(self, targets_a, targets_b):
        """Do two recovery target sets belong to the same dependency group?

        True when the sets intersect or any cross pair is
        ancestor/descendant over the merged edges — the condition under
        which their recoveries must stay serialized.
        """
        set_a, set_b = set(targets_a), set(targets_b)
        if not set_a or not set_b:
            return False
        if set_a & set_b:
            return True
        for a in sorted(set_a):
            for b in sorted(set_b):
                if self.related(a, b):
                    return True
        return False

    # ------------------------------------------------------------------
    # Deterministic grouping
    # ------------------------------------------------------------------
    @staticmethod
    def group_key(targets):
        """Canonical (deterministic) ladder key for a target set."""
        return min(targets)

    def partition(self, names):
        """Split ``names`` into independent recovery domains.

        Returns a sorted list of sorted tuples: two names land in the same
        tuple exactly when their (transitively merged) target sets
        conflict.  Deterministic for a given graph state.
        """
        remaining = sorted(set(names))
        domains = []
        for name in remaining:
            merged = None
            for domain in domains:
                if any(self.related(name, member) for member in domain):
                    merged = domain
                    break
            if merged is None:
                domains.append({name})
            else:
                merged.add(name)
                # Absorbing a name can bridge two previously-separate
                # domains; re-merge until stable.
                changed = True
                while changed:
                    changed = False
                    for other in domains:
                        if other is merged:
                            continue
                        if any(
                            self.related(a, b)
                            for a in merged
                            for b in other
                        ):
                            merged |= other
                            domains.remove(other)
                            changed = True
                            break
        return sorted(tuple(sorted(domain)) for domain in domains)

    def __repr__(self):
        edges = sum(len(children) for children in self._static.values())
        live = "+live" if self.analyzer is not None else ""
        return f"<RecoveryGraph {len(self.nodes)} nodes {edges} edges{live}>"
