"""The recovery manager (§4): diagnosis scores + the recursive policy.

The RM listens (on the simulated analogue of a UDP port) for failure
reports from the monitors, each carrying the failed URL and the failure
type.  Using a static URL-prefix → call-path map, it increments a score for
every component on the path of a failed URL and recovers when a score
crosses a hand-tuned threshold, always trying the cheapest action first:

    EJB µRB → WAR µRB → application restart → JVM restart → OS reboot
    → notify a human.

Diagnosis is deliberately "simplistic ... often yields false positives"
(§4) — the paper's point is that µRBs are cheap enough to tolerate sloppy
diagnosis.  One refinement mirrors the rejuvenation service: reports whose
failure kind is resource exhaustion are diagnosed by heap attribution (the
biggest leaker gets microrebooted) rather than by call-path scores.

A second, opt-in diagnosis mode (``diagnosis="path-analysis"``) replaces
the static map with the live Pinpoint-style anomaly ranking of a
:class:`~repro.diagnosis.PathAnalyzer` fed by the span layer: µRB targets
are picked by observed failed-vs-successful path membership, falling back
to the static map while too few paths have been observed.  The static mode
stays the default so the paper's Table 1–4 experiments reproduce unchanged.

The RM runs one of two schedulers:

* ``"serial"`` (default, the paper's §4 pipeline): one recovery at a
  time; reports queued during a recovery are stale and dropped.
* ``"parallel"`` (dependency-aware): independent components microreboot
  concurrently, judged against a
  :class:`~repro.core.recovery_graph.RecoveryGraph` of static descriptor
  edges merged with the analyzer's observed call paths.  Actions within
  one dependency group stay serialized on a per-group escalation ladder;
  the node-wide rungs (WAR and coarser) are node-exclusive; the shared
  storm limiter is the global concurrency cap.  Backoff, quarantine and
  defer semantics are unchanged and per target.  Dispatch demands a
  localized culprit: a *specific* (non-web) component must cross the
  score threshold, or unlocalized evidence must reach twice the
  threshold, before anything runs — so a multi-component burst is not
  coarsened just because every failing path crosses the WAR.  Dispatch
  order is deterministic (sorted group keys, one dispatch per report),
  preserving the same-seed ⇒ same-trace contract.
"""

import enum
from dataclasses import dataclass, field

from repro.core.hardening import HardeningPolicy
from repro.core.recovery_graph import RecoveryGraph
from repro.diagnosis.path_analysis import PathAnalyzer
from repro.sim.resources import Queue
from repro.telemetry.metrics import MetricsRegistry


class FailureKind(enum.Enum):
    """What a monitor observed (the §4 detector taxonomy)."""

    NETWORK = "network"  # cannot connect / connection reset
    HTTP_ERROR = "http-error"  # 4xx or 5xx status
    KEYWORD = "keyword"  # failure keywords in a 200 page
    APP_SPECIFIC = "app-specific"  # negative ids, login loop, ...
    COMPARISON_MISMATCH = "comparison"  # differs from known-good instance
    RESOURCE_EXHAUSTION = "resource-exhaustion"  # OOM signatures
    TIMEOUT = "timeout"  # no response within the client's patience
    PREDICTED = "predicted"  # no failure yet: a health alert predicted one


@dataclass
class FailureReport:
    """One monitor observation delivered to the RM."""

    time: float
    url: str
    operation: str
    kind: FailureKind
    detail: str = ""
    client_id: int = 0
    #: Session cookie of the failing client, when it had one: lets a
    #: cluster rig attribute the report to the node holding that session.
    cookie: str = None


@dataclass
class RecoveryAction:
    """One recovery the RM performed (for timelines and assertions)."""

    decided_at: float
    level: str
    target: tuple
    trigger: FailureKind
    finished_at: float = None
    #: Set when the action itself raised; the RM records it and moves on.
    error: str = None

    @property
    def ok(self):
        return self.error is None


@dataclass
class _GroupLadder:
    """Escalation state for one dependency group (parallel scheduler).

    The serial scheduler keeps one incident's worth of this state in the
    RM itself; the parallel scheduler keeps one ladder per dependency
    group (keyed by the group's canonical name) plus a single node ladder
    for the node-wide rungs, so two independent components escalating at
    once never share attempts, tried sets, or level state.
    """

    key: str
    last_action_end: float = None
    last_level_index: int = -1
    last_action_ok: bool = True
    tried: set = field(default_factory=set)
    ejb_attempts: int = 0


@dataclass
class _Inflight:
    """One dispatched-but-unfinished recovery (parallel scheduler)."""

    action: "RecoveryAction"
    level_index: int
    ladder: _GroupLadder
    #: Expanded component targets, or None for node-exclusive coarse
    #: actions (which conflict with everything).
    targets: frozenset = None
    candidate: str = None


#: The recursive policy's escalation ladder (§4).
LEVELS = ("ejb", "war", "application", "jvm", "os", "human")

#: Levels whose recovery disrupts the entire node.  For backoff accounting
#: they share one key: an application restart followed immediately by a JVM
#: restart followed by an OS reboot is one node being recycled three times,
#: not three independent recoveries.
NODE_WIDE_LEVELS = ("application", "jvm", "os")


class RecoveryManager:
    """Automated failure diagnosis and recursive recovery."""

    def __init__(
        self,
        kernel,
        coordinator,
        url_path_map,
        node_controller=None,
        score_threshold=3,
        escalation_window=45.0,
        recurring_limit=8,
        recurring_window=600.0,
        policy="recursive",
        post_recovery_grace=30.0,
        max_ejb_attempts=2,
        score_window=25.0,
        kind_weights=None,
        metrics=None,
        diagnosis="static-map",
        path_analyzer=None,
        hardening=None,
        storm_limiter=None,
        scheduler=None,
        recovery_graph=None,
    ):
        if policy not in ("recursive", "process-restart"):
            raise ValueError(f"unknown recovery policy {policy!r}")
        if diagnosis not in ("static-map", "path-analysis"):
            raise ValueError(f"unknown diagnosis mode {diagnosis!r}")
        self.kernel = kernel
        self.coordinator = coordinator
        self.url_path_map = dict(url_path_map)
        self.node_controller = node_controller
        self.score_threshold = score_threshold
        self.escalation_window = escalation_window
        self.recurring_limit = recurring_limit
        self.recurring_window = recurring_window
        #: "recursive" is the paper's cheapest-first ladder; the
        #: "process-restart" policy restarts the JVM on every recovery —
        #: the baseline Figure 1 compares microreboots against.
        self.policy = policy
        #: Reports stamped before last-recovery-end + grace are dropped:
        #: right after a recovery, residual failures (e.g. one login
        #: prompt per client whose session a JVM restart destroyed) are
        #: expected and must not immediately re-trigger recovery.
        self.post_recovery_grace = post_recovery_grace
        #: How many distinct EJB targets to try before coarsening.
        self.max_ejb_attempts = max_ejb_attempts
        #: component -> number of mapped URL prefixes containing it; used
        #: to prefer components *specific* to the failing URLs over ones
        #: (like entity beans) that appear on almost every path.
        self._paths_containing = {}
        for path in self.url_path_map.values():
            for component in path:
                self._paths_containing[component] = (
                    self._paths_containing.get(component, 0) + 1
                )
        self._ejb_attempts_this_incident = 0
        #: Scores are computed over a sliding window so a brief, self-
        #: healing burst (e.g. each client's one login prompt after a JVM
        #: restart lost the sessions) decays instead of accumulating
        #: towards the threshold forever.
        self.score_window = score_window
        #: Failure kinds may be down-weighted; application-specific
        #: login prompts are characteristically self-healing (the client
        #: re-logs-in), so they count less towards recovery decisions.
        self.kind_weights = dict(kind_weights or {FailureKind.APP_SPECIFIC: 0.2})
        self._recent_reports = []  # (time, path components, weight)

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._reports_received = self.metrics.counter("rm.reports.received")
        self._reports_stale = self.metrics.counter("rm.reports.stale")
        self._actions_by_level = self.metrics.family("rm.actions.by_level")
        self._action_errors = self.metrics.counter("rm.actions.errors")
        self._diagnosis_by_mode = self.metrics.family("rm.diagnosis.by_mode")

        #: Pipeline hardening (off by default — the paper's pipeline).
        self.hardening = hardening if hardening is not None else HardeningPolicy.disabled()
        #: Shared cluster-wide limiter, or None (no storm limiting).
        self.storm_limiter = storm_limiter
        #: backoff key (component name or level) -> recent recovery times.
        self._recovery_history = {}
        #: backoff key -> simulated time before which it may not recover.
        self._backoff_until = {}
        #: component -> quarantine expiry time.
        self.quarantined = {}
        self._backoff_deferred = self.metrics.counter("rm.backoff.deferred")
        self._quarantines = self.metrics.counter("rm.quarantine.count")
        self._reports_quarantined = self.metrics.counter("rm.reports.quarantined")

        #: "static-map" (the paper's §4 diagnosis) or "path-analysis"
        #: (Pinpoint-style ranking fed by the span layer).
        self.diagnosis = diagnosis
        if diagnosis == "path-analysis" and path_analyzer is None:
            path_analyzer = PathAnalyzer(kernel=kernel)
        self.path_analyzer = path_analyzer
        #: Audit log of every EJB-level target choice: which mode produced
        #: it and what the analyzer saw at that moment.
        self.diagnosis_log = []

        #: "serial" (the paper's one-at-a-time pipeline) or "parallel"
        #: (dependency-aware concurrent dispatch).  Defaults to whatever
        #: the hardening policy asks for.
        if scheduler is None:
            scheduler = (
                "parallel" if self.hardening.parallel_recovery else "serial"
            )
        if scheduler not in ("serial", "parallel"):
            raise ValueError(f"unknown recovery scheduler {scheduler!r}")
        if scheduler == "parallel" and policy != "recursive":
            raise ValueError(
                "the parallel scheduler requires the recursive policy "
                "(process-restart has no per-group ladder to parallelize)"
            )
        self.scheduler = scheduler
        self.recovery_graph = recovery_graph
        if scheduler == "parallel" and self.recovery_graph is None:
            self.recovery_graph = RecoveryGraph(
                self.server.descriptors_for(coordinator.app_name),
                analyzer=self.path_analyzer,
            )

        #: Parallel-scheduler state (untouched in serial mode): one
        #: escalation ladder per dependency group plus the node ladder
        #: for the node-wide rungs; in-flight dispatches; per-component
        #: staleness cutoffs.
        self._ladders = {}
        self._node_ladder = _GroupLadder("node")
        self._inflight = []
        self._component_last_end = {}
        self._node_last_end = None
        self._dispatch_seq = 0

        self.inbox = Queue(kernel)
        self.scores = {}
        self.actions = []
        self.human_notified = False
        self.recovering = False
        self._last_action_end = None
        self._last_level_index = -1
        self._last_action_ok = True
        self._tried_this_incident = set()
        self._process = None
        #: Observers called with each completed RecoveryAction (the load
        #: balancer hooks in here for failover coordination, §5.3).
        self.listeners = []
        #: Observers called with each RecoveryAction *before* it executes
        #: (cluster rigs open the failover window here).
        self.begin_listeners = []
        #: Observers called as ``listener(component, active_set)`` when a
        #: quarantine begins or lifts; cluster rigs steer requests for
        #: quarantined components to healthy nodes (§6.1 microfailover).
        self.quarantine_listeners = []
        #: Observers called as ``listener(reason, level, targets, ttl)``
        #: when a recovery is deferred (backoff/storm).  A deferred
        #: node-wide recovery means "this node is sick but rebooting it
        #: again now would hurt more" — cluster rigs tell the load
        #: balancer to route around the node for the backoff's remainder
        #: (the ``ttl``).
        self.defer_listeners = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def server(self):
        return self.coordinator.server

    def start(self):
        """Spawn the RM's event loop."""
        if self._process is None or not self._process.is_alive:
            self._process = self.kernel.process(self._run(), name="recovery-manager")
        return self._process

    def report(self, failure_report):
        """Deliver one failure report (monitors call this)."""
        self.inbox.put(failure_report)

    # ------------------------------------------------------------------
    # Diagnosis
    # ------------------------------------------------------------------
    def path_for_url(self, url):
        """Longest-prefix match into the static URL → call-path map."""
        best = None
        for prefix in self.url_path_map:
            if url.startswith(prefix) and (best is None or len(prefix) > len(best)):
                best = prefix
        return list(self.url_path_map.get(best, ()))

    def _score(self, report):
        weight = self.kind_weights.get(report.kind, 1.0)
        self._recent_reports.append(
            (report.time, tuple(self.path_for_url(report.url)), weight)
        )
        self._refresh_scores()

    def _refresh_scores(self):
        """Recompute ``self.scores`` over the sliding window."""
        horizon = self.kernel.now - self.score_window
        self._recent_reports = [
            entry for entry in self._recent_reports if entry[0] >= horizon
        ]
        scores = {}
        for _time, path, weight in self._recent_reports:
            for component in path:
                scores[component] = scores.get(component, 0.0) + weight
        self.scores = scores

    def _top_candidate(self, exclude):
        """Best EJB candidate not yet tried this incident.

        Ranked by *specificity-weighted* score: a component's raw score
        divided by how many mapped URLs contain it.  A bean serving only
        the failing URL outranks an entity bean that sits on most paths,
        even when their raw scores tie — without this, shared substrates
        absorb the blame for every failure above them.
        """
        war = self.server.web_component_name
        candidates = [
            (score / self._paths_containing.get(name, 1), score, name)
            for name, score in self.scores.items()
            if score >= self.score_threshold
            and name != war
            and name not in exclude
        ]
        if not candidates:
            return None
        candidates.sort(key=lambda entry: (-entry[0], -entry[1], entry[2]))
        return candidates[0][2]

    def _path_candidate(self, exclude):
        """Best untried target from the live anomaly ranking, or None.

        Returns None (deferring to the static map) while the analyzer has
        not yet observed enough paths — and enough *failed* paths — for
        the chi-square statistic to mean anything, or when everything it
        implicates has already been tried this incident.
        """
        analyzer = self.path_analyzer
        if analyzer is None or not analyzer.ready():
            return None
        war = self.server.web_component_name
        for name, _score in analyzer.rank():
            if name == war or name in exclude:
                continue
            if name not in self.server.containers:
                continue
            return name
        return None

    def _candidate(self, exclude, record=False):
        """Best untried EJB µRB target under the configured diagnosis mode."""
        mode, candidate = "static-map", None
        if self.diagnosis == "path-analysis":
            candidate = self._path_candidate(exclude)
            mode = "path-analysis" if candidate is not None else "static-fallback"
        if candidate is None:
            candidate = self._top_candidate(exclude)
        if record:
            self._record_diagnosis(mode, candidate)
        return candidate

    def _record_diagnosis(self, mode, candidate):
        """Append to the audit log and publish an ``rm.diagnosis`` event."""
        entry = {"time": self.kernel.now, "mode": mode, "candidate": candidate}
        if self.path_analyzer is not None:
            entry.update(self.path_analyzer.explain(limit=3))
        self.diagnosis_log.append(entry)
        self._diagnosis_by_mode.inc(mode)
        self.kernel.trace.publish(
            "rm.diagnosis",
            server=self.server.name,
            mode=mode,
            candidate=candidate,
            paths=entry.get("paths"),
            failed=entry.get("failed"),
            ranking=tuple(
                f"{name}:{score}" for name, score in entry.get("ranking") or ()
            ),
        )

    def _biggest_leaker(self):
        """Memory-attribution diagnosis for resource-exhaustion reports."""
        for owner in self.server.heap.owners_by_leak():
            if owner in self.server.containers:
                return owner
        return None

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def _run(self):
        while True:
            report = yield self.inbox.get()
            self._reports_received.inc()
            self.kernel.trace.publish(
                "rm.report",
                server=self.server.name,
                url=report.url,
                failure=report.kind.value,
                client=report.client_id,
            )
            if self._is_stale(report):
                continue
            if self.quarantined and self._explained_by_quarantine(report):
                # The failure is already explained: a quarantined (flapping)
                # component sits on the failed URL's path and is answering
                # fast 503s by design.  Feeding the report into the scores
                # would just re-trigger the reboot loop quarantine exists
                # to break.
                self._reports_quarantined.inc()
                self.kernel.trace.publish(
                    "rm.report.quarantined", server=self.server.name,
                    url=report.url, failure=report.kind.value,
                )
                continue
            self._score(report)
            if self.scheduler == "parallel":
                self._dispatch_parallel(report)
            elif self._should_act(report):
                yield from self._recover(report)

    def _is_stale(self, report):
        """Drop reports that predate the recovery that would answer them.

        Serial mode judges against the single last action.  Parallel mode
        judges per component: a report is stale only if it predates the
        last finished recovery of a component *on its own path* (or the
        last node-wide recovery) — evidence about one group must not be
        discarded because an independent group just finished recovering.
        """
        if self.scheduler == "parallel":
            cutoff = self._node_last_end or 0.0
            for component in self.path_for_url(report.url):
                cutoff = max(
                    cutoff, self._component_last_end.get(component, 0.0)
                )
            if report.time < cutoff:
                self._reports_stale.inc()
                return True
            if (
                self._node_last_end is not None
                and report.kind is FailureKind.APP_SPECIFIC
                and report.time < self._node_last_end + self.post_recovery_grace
            ):
                # Login prompts are the aftermath of session-destroying
                # (node-wide) recoveries; µRBs preserve sessions, so only
                # coarse actions open the grace window here.
                return True
            return False
        if self._last_action_end is not None:
            if report.time < self._last_action_end:
                self._reports_stale.inc()
                return True  # stale: the failure predates the last recovery
            if (
                report.kind is FailureKind.APP_SPECIFIC
                and report.time < self._last_action_end + self.post_recovery_grace
            ):
                # Expected aftermath: a session-destroying recovery
                # produces one login prompt per client; give the
                # population time to re-log-in before reacting.
                return True
        return False

    def _should_act(self, report):
        if self.recovering or self.human_notified:
            return False
        if report.kind is FailureKind.RESOURCE_EXHAUSTION:
            return True
        return any(
            score >= self.score_threshold for score in self.scores.values()
        )

    def _next_level_index(self, now, report):
        """Recursive policy: try finer targets first, escalate when stuck.

        A fresh incident (quiet since the last recovery plus the grace
        period and escalation window) starts back at the EJB level.
        Within an incident, another EJB µRB is attempted while untried
        hot candidates remain (up to ``max_ejb_attempts``); after that,
        progressively larger subsets are rebooted.
        """
        if (
            self._last_action_end is None
            or now - self._last_action_end > self.escalation_window
        ):
            self._tried_this_incident = set()
            self._ejb_attempts_this_incident = 0
            return 0
        if (
            self._last_level_index <= 0
            # An errored µRB is evidence the fine-grained machinery itself
            # is hurt; coarsen instead of retrying at the same grain.
            and self._last_action_ok
            and self._ejb_attempts_this_incident < self.max_ejb_attempts
            and report.kind is not FailureKind.RESOURCE_EXHAUSTION
            and self._candidate(
                self._tried_this_incident | self.active_quarantines()
            )
            is not None
        ):
            return 0
        return min(self._last_level_index + 1, len(LEVELS) - 1)

    def _recover(self, report):
        """Generator: choose and execute one recovery action."""
        now = self.kernel.now
        if self.policy == "process-restart":
            level_index = LEVELS.index("jvm")
        else:
            level_index = self._next_level_index(now, report)
        level = LEVELS[level_index]
        target = ()
        candidate = None
        hardening = self.hardening

        if level == "ejb":
            quarantined = self.active_quarantines()
            exclude = self._tried_this_incident | quarantined
            if report.kind is FailureKind.RESOURCE_EXHAUSTION:
                candidate = self._biggest_leaker()
                if candidate is not None and self._in_backoff(candidate, now):
                    # The leaker was µRB'd recently and the heap is
                    # exhausted *again*: deferring would leave the node
                    # in OOM meltdown until the backoff lapses (every
                    # request fails, and each report re-extends the
                    # backoff via the flap strike).  Exhaustion does not
                    # pass on its own — count the flap evidence, then
                    # coarsen: the node-wide rungs free every
                    # component's leak at once.
                    self._flap_strike(candidate)
                    candidate = None
                elif candidate in exclude:
                    candidate = None
            else:
                candidate = self._candidate(exclude, record=True)
                if (
                    hardening.enabled
                    and candidate is not None
                    and self._in_backoff(candidate, now)
                ):
                    # The chosen target is still inside its backoff: wait
                    # it out rather than recycling the component.
                    self._flap_strike(candidate)
                    return self._defer("backoff", level, (candidate,))
            if candidate is None:
                level_index += 1
                level = LEVELS[level_index]

        if (
            hardening.enabled
            and level == "war"
            and report.kind is not FailureKind.RESOURCE_EXHAUSTION
        ):
            # About to coarsen beyond single-component µRBs — but when the
            # hottest candidate overall (tried this incident or not) is a
            # component we recently recovered and it is still in backoff,
            # the recovery evidently did not stick.  That is flap
            # evidence: grounds for waiting (and eventually quarantining
            # the flapper), not for escalating to a far more disruptive
            # level.
            hot = self._candidate(self.active_quarantines())
            if hot is not None and self._in_backoff(hot, now):
                self._flap_strike(hot)
                return self._defer("backoff", level, (hot,))

        if hardening.enabled and level not in ("ejb", "human"):
            key = "node" if level in NODE_WIDE_LEVELS else level
            if now < self._backoff_until.get(key, 0.0):
                # A coarse recovery just ran (or was recently deferred):
                # give the node room to breathe — and external trouble
                # (a flaky LB link, a slow disk) time to pass — before
                # recycling it at an even coarser grain.
                return self._defer("backoff", level, ())

        if (
            self.storm_limiter is not None
            and level != "human"
            and not self.storm_limiter.admit(who=self.server.name)
        ):
            return self._defer("storm", level, ())
        admitted = self.storm_limiter is not None and level != "human"

        action = RecoveryAction(
            decided_at=now,
            level=level,
            target=(candidate,) if candidate is not None else target,
            trigger=report.kind,
        )
        self.recovering = True
        try:
            # Everything from here on runs inside the action: group
            # expansion can raise (a stale URL-map name unknown to the
            # coordinator), and when it does the admitted storm-limiter
            # slot must still be released and the candidate's backoff key
            # must still advance — otherwise storms of failing actions
            # wedge the limiter.
            if level == "ejb":
                target = tuple(self.coordinator.expand_targets([candidate]))
                action.target = target
                self._tried_this_incident |= set(target)
                self._ejb_attempts_this_incident += 1
            self.kernel.trace.publish(
                "rm.decision",
                server=self.server.name,
                level=level,
                target=action.target,
                trigger=report.kind.value,
            )
            for listener in self.begin_listeners:
                listener(action)
            if level == "ejb":
                yield from self.coordinator.microreboot(list(target))
            elif level == "war":
                event = yield from self.coordinator.microreboot_war()
                action.target = event.components
            elif level == "application":
                event = yield from self.coordinator.restart_application()
                action.target = event.components
            elif level == "jvm":
                yield from self._restart_jvm()
            elif level == "os":
                yield from self._reboot_os()
            else:  # human
                self.human_notified = True
        except Exception as exc:  # noqa: BLE001 - a failed action must not
            # wedge the RM: before this handler existed, an action that
            # raised left ``actions`` unappended, ``_last_action_end``
            # stale, and the scores intact, so the next report replayed the
            # same escalation state forever.  Record the failed action and
            # reset incident state exactly like the success path; the
            # escalation ladder then tries the next-coarser level.
            action.error = f"{type(exc).__name__}: {exc}"
            self._action_errors.inc()
            # The incident-attempt state must not survive a raised action
            # either: a stale ``_tried_this_incident`` would keep excluding
            # candidates that were never actually recovered, wedging the
            # ladder at a level whose action cannot complete.
            self._tried_this_incident = set()
            self._ejb_attempts_this_incident = 0
        finally:
            self.recovering = False
            action.finished_at = self.kernel.now
            self.actions.append(action)
            self._actions_by_level.inc(level)
            self._last_action_end = action.finished_at
            self._last_level_index = level_index
            self._last_action_ok = action.ok
            self.scores = {}
            self._recent_reports = []
            if self.path_analyzer is not None:
                # Paths observed before the recovery are as stale as the
                # scores: re-targeting must be based on post-recovery data.
                self.path_analyzer.clear()
            self.inbox.drain()  # reports queued during recovery are stale
            self.kernel.trace.publish(
                "rm.action.end",
                server=self.server.name,
                level=level,
                target=action.target,
                ok=action.ok,
                error=action.error,
                duration=action.finished_at - action.decided_at,
            )
            self._check_recurring()
            if admitted:
                self.storm_limiter.release()
            if hardening.enabled and level != "human":
                self._note_recovery(level, action)
            for listener in self.listeners:
                listener(action)

    # ------------------------------------------------------------------
    # The parallel scheduler (dependency-aware concurrent dispatch)
    # ------------------------------------------------------------------
    def _ladder_for(self, targets):
        key = self.recovery_graph.group_key(targets)
        ladder = self._ladders.get(key)
        if ladder is None:
            ladder = _GroupLadder(key)
            self._ladders[key] = ladder
        return ladder

    def _reset_stale_ladders(self, now):
        """Groups quiet past the escalation window start fresh incidents."""
        for key in sorted(self._ladders):
            ladder = self._ladders[key]
            if any(entry.ladder is ladder for entry in self._inflight):
                continue
            if (
                ladder.last_action_end is not None
                and now - ladder.last_action_end > self.escalation_window
            ):
                del self._ladders[key]

    def _conflicts(self, targets, entry):
        if entry.targets is None:
            return True  # node-exclusive coarse action blocks everything
        return self.recovery_graph.conflicts(targets, entry.targets)

    def _dispatch_parallel(self, report):
        """Start at most one recovery for this report, without blocking.

        The dependency-aware twin of the serial ``_should_act`` +
        ``_recover`` pair: a hot candidate whose dependency group is
        already recovering is skipped (its group stays serialized) and the
        next-hottest *independent* candidate is considered instead, so one
        report can only ever start a recovery in a group that is idle.
        Candidates are re-diagnosed from the current scores on every
        dispatch — a deferred recovery never acts on a candidate captured
        earlier.

        Unlike the serial ladder, dispatch demands a *localized* culprit:
        during a multi-component burst every failing path crosses the web
        component, so its raw score crosses threshold while the specific
        beans are still accumulating — and acting on that alone would
        coarsen exactly the incidents this scheduler exists to keep
        fine-grained.  Unlocalized evidence must therefore reach twice
        the threshold before the node-wide rungs are considered.
        """
        if self.human_notified:
            return
        now = self.kernel.now
        resource = report.kind is FailureKind.RESOURCE_EXHAUSTION
        if not resource:
            war = self.server.web_component_name
            specific = any(
                score >= self.score_threshold
                for name, score in self.scores.items()
                if name != war
            )
            coarse_demand = any(
                score >= 2 * self.score_threshold
                for score in self.scores.values()
            )
            if not specific and not coarse_demand:
                return
        self._reset_stale_ladders(now)
        exclude = self.active_quarantines()
        for ladder in self._ladders.values():
            exclude |= ladder.tried
        skip = set()
        while True:
            if resource:
                candidate = self._biggest_leaker()
                if candidate is not None and self._in_backoff(candidate, now):
                    # Same contract as the serial ladder: a re-exhausted
                    # heap whose biggest leaker is inside its backoff is
                    # grounds for coarsening, not deferring — waiting
                    # out the backoff means waiting in OOM meltdown.
                    self._flap_strike(candidate)
                    candidate = None
                if candidate in exclude | skip:
                    candidate = None
            else:
                candidate = self._candidate(exclude | skip, record=True)
            if candidate is None:
                return self._dispatch_coarse(report, now, resource)
            try:
                targets = frozenset(
                    self.coordinator.expand_targets([candidate])
                )
            except Exception:  # noqa: BLE001 — unknown to the coordinator
                # (e.g. a stale URL-map name): dispatch the bare candidate
                # anyway; the execution hits the same error, records an
                # errored action, and still advances the candidate's
                # backoff key.
                targets = frozenset((candidate,))
            ladder = self._ladder_for(targets)
            if (
                not ladder.last_action_ok
                or ladder.ejb_attempts >= self.max_ejb_attempts
            ):
                # This group's fine grain is spent within its incident:
                # walk the node-wide rungs instead.
                return self._dispatch_coarse(report, now, resource)
            if not resource and self._in_backoff(candidate, now):
                self._flap_strike(candidate)
                return self._defer("backoff", "ejb", (candidate,))
            if any(self._conflicts(targets, entry) for entry in self._inflight):
                if resource:
                    return  # its group is mid-recovery: wait, don't coarsen
                # Same dependency group already recovering: stay
                # serialized within the group, look for an independent
                # candidate instead.
                skip |= targets
                skip.add(candidate)
                continue
            if (
                self.storm_limiter is not None
                and not self.storm_limiter.admit(who=self.server.name)
            ):
                # The storm limiter is the global concurrency cap.
                # Deferred, not cancelled: scores survive, and the next
                # report re-diagnoses from scratch.
                return self._defer("storm", "ejb", (candidate,))
            admitted = self.storm_limiter is not None
            ladder.tried |= targets
            ladder.ejb_attempts += 1
            action = RecoveryAction(
                decided_at=now,
                level="ejb",
                target=(candidate,),
                trigger=report.kind,
            )
            entry = _Inflight(
                action=action,
                level_index=0,
                ladder=ladder,
                targets=targets,
                candidate=candidate,
            )
            self._inflight.append(entry)
            self.recovering = True
            self._dispatch_seq += 1
            self.kernel.process(
                self._execute(entry, admitted),
                name=f"rm-{self.server.name}-recovery-{self._dispatch_seq}",
            )
            return

    def _dispatch_coarse(self, report, now, resource):
        """The node-wide rungs (WAR and coarser) are node-exclusive."""
        if self._inflight:
            # Wait for the in-flight recoveries: scores survive, so the
            # escalation is retried on the next report once the node is
            # quiet.
            return
        hardening = self.hardening
        level_index = self._node_level_index(now)
        level = LEVELS[level_index]
        if hardening.enabled and level == "war" and not resource:
            # Same flap check as the serial ladder: when the hottest
            # candidate overall is a component still in backoff, the last
            # recovery evidently did not stick — grounds for waiting (and
            # eventually quarantining), not for a far more disruptive
            # level.
            hot = self._candidate(self.active_quarantines())
            if hot is not None and self._in_backoff(hot, now):
                self._flap_strike(hot)
                return self._defer("backoff", level, (hot,))
        if hardening.enabled and level != "human":
            key = "node" if level in NODE_WIDE_LEVELS else level
            if now < self._backoff_until.get(key, 0.0):
                return self._defer("backoff", level, ())
        if (
            self.storm_limiter is not None
            and level != "human"
            and not self.storm_limiter.admit(who=self.server.name)
        ):
            return self._defer("storm", level, ())
        admitted = self.storm_limiter is not None and level != "human"
        action = RecoveryAction(
            decided_at=now, level=level, target=(), trigger=report.kind
        )
        entry = _Inflight(
            action=action,
            level_index=level_index,
            ladder=self._node_ladder,
            targets=None,
        )
        self._inflight.append(entry)
        self.recovering = True
        self._dispatch_seq += 1
        self.kernel.process(
            self._execute(entry, admitted),
            name=f"rm-{self.server.name}-recovery-{self._dispatch_seq}",
        )

    def _node_level_index(self, now):
        """The node ladder's next rung (never finer than the WAR)."""
        ladder = self._node_ladder
        war = LEVELS.index("war")
        if (
            ladder.last_action_end is None
            or now - ladder.last_action_end > self.escalation_window
        ):
            ladder.last_level_index = -1
            ladder.last_action_ok = True
            return war
        return min(max(ladder.last_level_index + 1, war), len(LEVELS) - 1)

    def _execute(self, entry, admitted):
        """Process body: run one dispatched recovery to completion.

        The parallel twin of :meth:`_recover`'s act/record half — same
        try/except/finally contract (an errored action is recorded, its
        storm slot released, its backoff advanced) — but completion
        bookkeeping is scoped to the entry's ladder and targets instead
        of global incident state.
        """
        action = entry.action
        level = action.level
        ladder = entry.ladder
        try:
            if level == "ejb":
                action.target = tuple(
                    self.coordinator.expand_targets([entry.candidate])
                )
            self.kernel.trace.publish(
                "rm.decision",
                server=self.server.name,
                level=level,
                target=action.target,
                trigger=action.trigger.value,
            )
            for listener in self.begin_listeners:
                listener(action)
            if level == "ejb":
                yield from self.coordinator.microreboot(list(action.target))
            elif level == "war":
                event = yield from self.coordinator.microreboot_war()
                action.target = event.components
            elif level == "application":
                event = yield from self.coordinator.restart_application()
                action.target = event.components
            elif level == "jvm":
                yield from self._restart_jvm()
            elif level == "os":
                yield from self._reboot_os()
            else:  # human
                self.human_notified = True
        except Exception as exc:  # noqa: BLE001 — same contract as _recover
            action.error = f"{type(exc).__name__}: {exc}"
            self._action_errors.inc()
            # The group's ladder must not keep excluding targets that were
            # never actually recovered; the cleared ladder coarsens on the
            # next report via last_action_ok.
            ladder.tried = set()
            ladder.ejb_attempts = 0
        finally:
            action.finished_at = self.kernel.now
            self.actions.append(action)
            self._actions_by_level.inc(level)
            self._last_action_end = action.finished_at
            ladder.last_action_end = action.finished_at
            ladder.last_level_index = entry.level_index
            ladder.last_action_ok = action.ok
            self._inflight.remove(entry)
            self.recovering = bool(self._inflight)
            if level == "ejb":
                recycled = set(action.target or ()) | set(entry.targets or ())
                for component in recycled:
                    self._component_last_end[component] = action.finished_at
                self._forget_evidence(recycled)
            else:
                # The node itself was recycled: all evidence predates it.
                self._node_last_end = action.finished_at
                self._component_last_end = {}
                self.scores = {}
                self._recent_reports = []
                if self.path_analyzer is not None:
                    self.path_analyzer.clear()
            self.kernel.trace.publish(
                "rm.action.end",
                server=self.server.name,
                level=level,
                target=action.target,
                ok=action.ok,
                error=action.error,
                duration=action.finished_at - action.decided_at,
            )
            self._check_recurring()
            if admitted:
                self.storm_limiter.release()
            if self.hardening.enabled and level != "human":
                self._note_recovery(level, action)
            for listener in self.listeners:
                listener(action)

    def _forget_evidence(self, components):
        """Evidence through just-recycled components is stale; keep the rest.

        The parallel counterpart of the serial scheduler's full score
        wipe: only reports whose path touches the recovered components
        are dropped, so independent groups keep the evidence their own
        (possibly imminent) recoveries are based on.
        """
        self._recent_reports = [
            entry
            for entry in self._recent_reports
            if not (set(entry[1]) & components)
        ]
        self._refresh_scores()
        if self.path_analyzer is not None:
            self.path_analyzer.forget(components)

    # ------------------------------------------------------------------
    # Preemptive recovery (health alerts → µRB before failure)
    # ------------------------------------------------------------------
    def preempt(self, component):
        """Schedule a preemptive µRB of ``component`` (no failure yet).

        The entry point the proactive rejuvenation policy calls when a
        health alert predicts trouble.  A preemptive action *respects*
        the reactive safeguards — it declines while the target is
        quarantined or in backoff, and takes a storm-limiter slot — but
        deliberately leaves all reactive state alone: it neither
        advances backoff/flap counters (planned maintenance is not
        flapping; the policy cooldown guards against preempt loops) nor
        consumes the real incident's EJB attempts or escalation ladder.

        Returns the dispatched :class:`RecoveryAction`, or None when the
        preemption was declined (busy, quarantined, deferred, unknown
        component, or the RM already gave up to a human).
        """
        now = self.kernel.now
        if self.human_notified:
            return None
        if component not in self.server.containers:
            return None
        if component in self.active_quarantines():
            return None
        if self._in_backoff(component, now):
            self._defer("backoff", "ejb", (component,))
            return None
        if self.scheduler == "serial":
            if self.recovering:
                return None
        else:
            try:
                targets = frozenset(
                    self.coordinator.expand_targets([component])
                )
            except Exception:  # noqa: BLE001 — same contract as dispatch
                targets = frozenset((component,))
            if any(
                self._conflicts(targets, entry) for entry in self._inflight
            ):
                return None
        if (
            self.storm_limiter is not None
            and not self.storm_limiter.admit(who=self.server.name)
        ):
            self._defer("storm", "ejb", (component,))
            return None
        admitted = self.storm_limiter is not None
        action = RecoveryAction(
            decided_at=now,
            level="ejb",
            target=(component,),
            trigger=FailureKind.PREDICTED,
        )
        if self.scheduler == "serial":
            self.recovering = True
        else:
            self._inflight.append(
                _Inflight(
                    action=action,
                    level_index=0,
                    # A throwaway ladder: preemptions must not consume the
                    # component's real dependency-group escalation state.
                    ladder=_GroupLadder(f"preempt:{component}"),
                    targets=targets,
                    candidate=component,
                )
            )
            self.recovering = True
        self._dispatch_seq += 1
        self.kernel.process(
            self._execute_preemptive(action, component, admitted),
            name=f"rm-{self.server.name}-preempt-{self._dispatch_seq}",
        )
        return action

    def _execute_preemptive(self, action, component, admitted):
        """Process body: one preemptive µRB, reactive state untouched.

        Same try/except/finally contract as the reactive executors (an
        errored action is recorded, its storm slot released, its backoff
        advanced) minus the incident bookkeeping: scores, tried sets,
        ladders, and ``_last_action_end`` all belong to *reactive*
        incidents and stay exactly as they were.
        """
        level = "ejb"
        try:
            action.target = tuple(
                self.coordinator.expand_targets([component])
            )
            self.kernel.trace.publish(
                "rm.decision",
                server=self.server.name,
                level=level,
                target=action.target,
                trigger=action.trigger.value,
                preemptive=True,
            )
            for listener in self.begin_listeners:
                listener(action)
            yield from self.coordinator.microreboot(list(action.target))
        except Exception as exc:  # noqa: BLE001 — same contract as _recover
            action.error = f"{type(exc).__name__}: {exc}"
            self._action_errors.inc()
        finally:
            action.finished_at = self.kernel.now
            self.actions.append(action)
            self._actions_by_level.inc(level)
            if self.scheduler == "serial":
                self.recovering = False
            else:
                self._inflight = [
                    entry for entry in self._inflight
                    if entry.action is not action
                ]
                self.recovering = bool(self._inflight)
                for name in set(action.target or (component,)):
                    self._component_last_end[name] = action.finished_at
            self.kernel.trace.publish(
                "rm.action.end",
                server=self.server.name,
                level=level,
                target=action.target,
                ok=action.ok,
                error=action.error,
                duration=action.finished_at - action.decided_at,
                preemptive=True,
            )
            if admitted:
                self.storm_limiter.release()
            # Deliberately NO _note_recovery: a preemptive µRB is planned
            # maintenance, not failure-driven recovery.  Counting it
            # toward flap detection would quarantine a slowly-leaking
            # component for being rejuvenated on schedule, and advancing
            # its backoff would defer the *reactive* recovery that an
            # actual failure needs.  The policy's per-component cooldown
            # is the preemption loop-guard (same contract as
            # RejuvenationService, whose rolling µRBs bypass the RM).
            for listener in self.listeners:
                listener(action)

    # ------------------------------------------------------------------
    # Hardening: backoff, flap quarantine, storm deferral
    # ------------------------------------------------------------------
    def _defer(self, reason, level, targets):
        """Skip this recovery without acting or mutating incident state.

        The failure scores survive untouched, so the recovery is retried
        on the next report once the backoff lapses or the storm window
        frees up — deferred, not cancelled.
        """
        if reason == "backoff":
            self._backoff_deferred.inc()
        self.kernel.trace.publish(
            "rm.recovery.deferred",
            server=self.server.name,
            reason=reason,
            level=level,
            targets=tuple(targets),
        )
        # How long the deferral holds: listeners (e.g. the LB routing
        # around a sick node) should not give up before the RM is even
        # allowed to act again.
        ttl = 0.0
        if reason == "backoff":
            if level == "ejb" and targets:
                keys = tuple(targets)
            elif level in NODE_WIDE_LEVELS:
                keys = ("node",)
            else:
                keys = (level,)
            until = max(
                (self._backoff_until.get(key, 0.0) for key in keys),
                default=0.0,
            )
            ttl = max(0.0, until - self.kernel.now)
        for listener in self.defer_listeners:
            listener(reason, level, tuple(targets), ttl)
        return None

    def active_quarantines(self):
        """Components currently quarantined (read-only; no pruning)."""
        now = self.kernel.now
        return {
            name for name, until in self.quarantined.items() if until > now
        }

    def _in_backoff(self, key, now):
        return self.hardening.enabled and now < self._backoff_until.get(key, 0.0)

    def _explained_by_quarantine(self, report):
        """True when a quarantined component sits on the report's path.

        Judged against the *report's own timestamp* with the half-open
        ``[begin, until)`` contract (the TawAccounting convention used
        throughout): a report stamped at exactly ``t == until`` is
        post-quarantine evidence — the sentinel was already unbound when
        the failure was observed — and must be scored, not suppressed.
        """
        active = {
            name
            for name, until in self.quarantined.items()
            if until > report.time
        }
        if not active:
            return False
        return bool(active & set(self.path_for_url(report.url)))

    def _record_repeat(self, key, at, level="ejb"):
        """Count one flap/backoff repeat for ``key``; returns the count.

        Each repeat inside ``flap_window`` extends the key's backoff
        exponentially.
        """
        hardening = self.hardening
        horizon = at - hardening.flap_window
        history = [
            t for t in self._recovery_history.get(key, ()) if t >= horizon
        ]
        history.append(at)
        self._recovery_history[key] = history
        repeats = len(history)
        backoff = min(
            hardening.backoff_max,
            hardening.backoff_base * hardening.backoff_factor ** (repeats - 1),
        )
        self._backoff_until[key] = at + backoff
        self.kernel.trace.publish(
            "rm.backoff.set",
            server=self.server.name,
            target=key,
            level=level,
            until=at + backoff,
            repeats=repeats,
        )
        return repeats

    def _flap_strike(self, name):
        """A target still in backoff is wanted again: count flap evidence.

        Debounced (``flap_debounce``) so one burst of failure reports
        registers as a single pulse; enough distinct pulses within
        ``flap_window`` quarantine the target.
        """
        now = self.kernel.now
        history = self._recovery_history.get(name, ())
        if history and now - history[-1] < self.hardening.flap_debounce:
            return
        repeats = self._record_repeat(name, now)
        if (
            repeats >= self.hardening.flap_threshold
            and name not in self.active_quarantines()
            and name in self.server.containers
        ):
            self._quarantine(name, now)

    def _note_recovery(self, level, action):
        """Record a finished recovery for backoff and flap accounting.

        EJB-level actions are keyed per component (the whole expanded
        recovery group); node-wide actions share the ``"node"`` key; the
        WAR level is keyed by its level string — so a node that keeps
        being recycled backs off exactly like a component that keeps
        flapping.
        """
        finished = action.finished_at
        if level == "ejb" and action.target:
            keys = list(action.target)
        elif level in NODE_WIDE_LEVELS:
            keys = ["node"]
        else:
            keys = [level]
        for key in keys:
            repeats = self._record_repeat(key, finished, level=level)
            if (
                level == "ejb"
                and repeats >= self.hardening.flap_threshold
                and key not in self.active_quarantines()
                and key in self.server.containers
            ):
                self._quarantine(key, finished)

    def _quarantine(self, name, now):
        """Flap detected: park ``name`` behind a fast-503 sentinel.

        Requests that would invoke the component get an immediate
        ``Retry-After`` answer (no threads killed, no transactions
        aborted), and reports explained by the quarantine are suppressed,
        breaking the reboot loop for ``quarantine_ttl`` seconds.
        """
        until = now + self.hardening.quarantine_ttl
        self.quarantined[name] = until
        self._quarantines.inc()
        retry_after = getattr(self.coordinator.retry_policy, "retry_after", 2.0)
        self.server.naming.bind_sentinel(name, retry_after)
        self.kernel.trace.publish(
            "rm.quarantine.begin", server=self.server.name,
            component=name, until=until,
        )
        self.kernel.process(
            self._lift_quarantine(name, until), name=f"quarantine-lift-{name}"
        )
        for listener in self.quarantine_listeners:
            listener(name, self.active_quarantines())

    def _lift_quarantine(self, name, until):
        """Generator: restore the component's binding at quarantine expiry."""
        yield self.kernel.timeout(max(0.0, until - self.kernel.now))
        if self.quarantined.get(name) != until:
            return  # re-quarantined meanwhile; that process owns the lift
        del self.quarantined[name]
        if self.server.naming.is_sentinel(name) and name in self.server.containers:
            self.server.naming.bind(name, name)
        self.kernel.trace.publish(
            "rm.quarantine.end", server=self.server.name, component=name
        )
        for listener in self.quarantine_listeners:
            listener(name, self.active_quarantines())

    def _restart_jvm(self):
        if self.node_controller is not None:
            yield from self.node_controller.restart_jvm()
        else:
            yield from self.server.restart_jvm()

    def _reboot_os(self):
        if self.node_controller is None:
            # No node abstraction (single-server rigs): a JVM restart is
            # the coarsest action available; escalate to the human next.
            yield from self.server.restart_jvm()
        else:
            yield from self.node_controller.reboot_os()

    def _check_recurring(self):
        """Notify a human on endless reboot cycles (§4)."""
        cutoff = self.kernel.now - self.recurring_window
        recent = [a for a in self.actions if a.finished_at >= cutoff]
        if len(recent) >= self.recurring_limit:
            self.human_notified = True
