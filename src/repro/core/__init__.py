"""The paper's primary contribution: microreboot machinery.

* :class:`~repro.core.microreboot.MicrorebootCoordinator` — the
  "microreboot method added to JBoss" (§3.2): surgically recycle one or
  more components (expanding to recovery groups), the WAR, or the whole
  application, preserving classloaders and session state.
* :class:`~repro.core.recovery_groups` — transitive closure of inter-EJB
  dependencies from deployment descriptors.
* :class:`~repro.core.recovery_graph.RecoveryGraph` — merged static +
  observed dependency graph; decides which recovery targets are
  independent enough to microreboot concurrently.
* :class:`~repro.core.recovery_manager.RecoveryManager` — score-based
  diagnosis plus the recursive recovery policy (EJB → WAR → application →
  JVM → OS → human).
* :class:`~repro.core.rejuvenation.RejuvenationService` — microrejuvenation
  (§6.4): rolling µRBs keyed off available heap memory.
* :class:`~repro.core.proactive.ProactiveRejuvenationPolicy` — the
  predictive loop: health alerts from the observability layer drive
  preemptive µRBs through :meth:`RecoveryManager.preempt`.
* :class:`~repro.core.retry.RetryPolicy` — the §6.2 transparent call-retry
  configuration (HTTP 503 Retry-After plus the optional pre-µRB drain
  delay).
"""

from repro.core.hardening import HardeningPolicy, RecoveryStormLimiter
from repro.core.microcheckpoint import MicrocheckpointStore
from repro.core.microreboot import MicrorebootCoordinator, RebootEvent
from repro.core.proactive import ProactiveRejuvenationPolicy
from repro.core.recovery_graph import RecoveryGraph
from repro.core.recovery_groups import compute_recovery_groups
from repro.core.recovery_manager import (
    FailureKind,
    FailureReport,
    RecoveryAction,
    RecoveryManager,
)
from repro.core.rejuvenation import RejuvenationService
from repro.core.retry import RetryPolicy

__all__ = [
    "FailureKind",
    "FailureReport",
    "HardeningPolicy",
    "MicrocheckpointStore",
    "MicrorebootCoordinator",
    "ProactiveRejuvenationPolicy",
    "RebootEvent",
    "RecoveryAction",
    "RecoveryGraph",
    "RecoveryManager",
    "RecoveryStormLimiter",
    "RejuvenationService",
    "RetryPolicy",
    "compute_recovery_groups",
]
