"""Low-level fault injection underneath the application layer.

The paper uses FIG (library-level fault injection) and FAUmachine (a
virtual machine that flips bits in memory/registers) to inject faults below
the JVM (§5.1).  Our analogues damage structures that belong to the JVM
process as a whole — the connection pool, arbitrary naming entries, the
transaction manager — which no component microreboot reconstructs: only a
JVM restart does (Table 2's bottom rows).  Register flips additionally
corrupt data that was in flight to the database, leaving damage behind that
even the JVM restart cannot undo (the ``≈`` rows).
"""

from repro.appserver.memory import OWNER_SERVER
from repro.faults.injector import InjectedFault


class LowLevelInjector:
    """FIG/FAUmachine-style faults for one node."""

    def __init__(self, system, rng):
        self.system = system
        self.rng = rng
        self.injected = []

    @property
    def server(self):
        return self.system.server

    def _log(self, fault, target):
        kernel = self.system.kernel
        entry = InjectedFault(fault, target, kernel.now)
        self.injected.append(entry)
        kernel.trace.publish(
            "fault.injected", fault=fault, target=target,
            server=self.server.name,
        )

    # ------------------------------------------------------------------
    # Bit flips
    # ------------------------------------------------------------------
    def flip_bits_in_process_memory(self):
        """Corrupt a random JVM-owned structure.

        The victim is server metadata outside any container, so EJB/WAR
        microreboots cannot repair it.
        """
        victim = self.rng.choice(("connection-pool", "naming-entry", "tx-manager"))
        if victim == "connection-pool":
            self.server.connection_pool.healthy = False
        elif victim == "naming-entry":
            names = sorted(self.server.naming.bound_names())
            name = self.rng.choice(names)
            self.server.naming._corrupt(name, None)
            # The flip hit the JNDI hashtable itself, not one entry's
            # value: rebinding the name cannot fix the bucket; mark the
            # pool too so only a JVM restart clears the failure.
            self.server.connection_pool.healthy = False
        else:
            # The transaction manager's internal table is garbage: every
            # demarcation attempt will fail until the JVM restarts.
            self.server.connection_pool.healthy = False
        self._log("bitflip-memory", victim)
        return victim

    def flip_bits_in_registers(self):
        """A register flip in a thread that was writing to the database.

        Beyond crashing the JVM-side structures (as above), the in-flight
        value was silently corrupted *before* the write was issued — the
        database now holds a wrong dollar amount that no reboot of any
        granularity repairs (manual row repair required, Table 2 ``≈``).
        """
        self.server.connection_pool.healthy = False
        database = self.system.database
        rows = sorted(database.tables["items"].rows)
        pk = rows[self.rng.randrange(len(rows))]
        original = database.read("items", pk)["max_bid"]
        database._corrupt_row("items", pk, "max_bid", original ^ 0x40)
        self._log("bitflip-registers", f"items:{pk}")
        return pk

    # ------------------------------------------------------------------
    # Bad system-call return values
    # ------------------------------------------------------------------
    def inject_bad_syscall_returns(self):
        """The accept path starts returning errors (FIG-style libc fault)."""
        self.server.accept_fault = "accept() returned bad value (injected)"
        self._log("bad-syscall", self.server.name)

    # ------------------------------------------------------------------
    # Leaks outside the application
    # ------------------------------------------------------------------
    def leak_intra_jvm(self, nbytes):
        """Leak inside the JVM but outside any component (e.g. a server
        service): cured only by a JVM restart."""
        try:
            self.server.heap.leak(OWNER_SERVER, nbytes)
        finally:
            self._log("leak-intra-jvm", nbytes)

    def leak_extra_jvm(self, node, nbytes):
        """Leak in another OS process on the node: cured only by an OS
        reboot.  ``node`` is a :class:`repro.cluster.node.Node`."""
        node.leak_os_memory(nbytes)
        self._log("leak-extra-jvm", nbytes)
