"""Application-level fault injection hooks (§5.1).

Behavioural faults (deadlock, infinite loop, leak, transient exception) are
installed as container invocation hooks — they live in the component's
volatile state and vanish when a microreboot rebuilds the container.
Corruption faults mutate real metadata and store contents.
"""

from collections import namedtuple

from repro.appserver.descriptors import TxAttribute
from repro.appserver.errors import ApplicationException
from repro.faults.corruption import CorruptionMode
from repro.sim.resources import Lock

#: One injected fault: what, where, and *when* (simulated seconds).  The
#: timestamp plus the ``fault.injected`` TraceBus event make chaos-campaign
#: timelines reconstructable from JSONL exports alone.
InjectedFault = namedtuple("InjectedFault", ("fault", "target", "time"))


class FaultInjector:
    """Injects the paper's fault taxonomy into one eBid system."""

    def __init__(self, system):
        self.system = system
        self.injected = []  # InjectedFault log for experiments

    @property
    def server(self):
        return self.system.server

    @property
    def kernel(self):
        return self.system.kernel

    def _container(self, component):
        return self.server.containers[component]

    def _log(self, fault, target):
        entry = InjectedFault(fault, target, self.kernel.now)
        self.injected.append(entry)
        self.kernel.trace.publish(
            "fault.injected", fault=fault, target=target,
            server=self.server.name,
        )

    # ------------------------------------------------------------------
    # Behavioural faults (cured by µRB because hooks live in the container)
    # ------------------------------------------------------------------
    def inject_deadlock(self, component):
        """Every call to ``component`` blocks on a never-released lock.

        Models a lock-ordering deadlock: the shepherd threads pile up until
        their request leases expire or a microreboot kills them.
        """
        lock = Lock(self.kernel, name=f"deadlock@{component}")
        lock.owner = "<deadlocked-peer>"  # held by the other party, forever

        def hook(container, ctx, method):
            yield lock.acquire(ctx)

        self._container(component).invocation_hooks.append(hook)
        self._log("deadlock", component)

    def inject_infinite_loop(self, component):
        """Calls to ``component`` spin forever, burning CPU (a hog)."""
        cpu = self.server.cpu

        def hook(container, ctx, method):
            cpu.add_hog()
            try:
                yield self.kernel.event()  # spins until the thread is killed
            finally:
                cpu.remove_hog()

        self._container(component).invocation_hooks.append(hook)
        self._log("infinite-loop", component)

    def inject_memory_leak(self, component, bytes_per_invocation):
        """Each call to ``component`` leaks heap memory attributed to it.

        Unlike the other behavioural faults, a leak is a bug in the
        component's *code*: a microreboot reclaims what has leaked so far
        (the discarded instances' object graphs become garbage) but does
        not stop future invocations from leaking — which is why the
        rejuvenation service of §6.4 has to keep cycling.
        """
        heap = self.server.heap

        def hook(container, ctx, method):
            heap.leak(component, bytes_per_invocation)
            return
            yield  # pragma: no cover - generator marker

        self._container(component).persistent_invocation_hooks.append(hook)
        self._log("memory-leak", component)

    def inject_transient_exception(self, component):
        """Every call to ``component`` raises until the component reboots."""

        def hook(container, ctx, method):
            raise ApplicationException(
                component, "injected transient exception"
            )
            yield  # pragma: no cover - generator marker

        self._container(component).invocation_hooks.append(hook)
        self._log("transient-exception", component)

    # ------------------------------------------------------------------
    # Volatile-metadata corruption
    # ------------------------------------------------------------------
    def corrupt_primary_keys(self, mode):
        """Corrupt IdentityManager's in-memory key counters.

        null → key generation NPEs; invalid → generated keys fail the
        database's type check; wrong → the bids/feedback counters are
        swapped, eliciting duplicate-key failures on bids and committing
        feedback rows under out-of-range ids (manual repair — Table 2 ≈).
        """
        container = self._container("IdentityManager")
        for instance in container.instances:
            if mode is CorruptionMode.NULL:
                instance._next = None
            elif mode is CorruptionMode.INVALID:
                # Non-null, numeric-looking, but not a legal key type: the
                # database's schema check rejects the generated keys.
                instance._next = {
                    table: [-99999.5, -99000.5] for table in instance._next
                }
            else:
                # Wrong-but-valid: the bids cursor is reset into the range
                # of already-used keys (duplicate-key failures), while the
                # feedback cursor jumps to a far-future block (inserts
                # succeed with out-of-range ids — durable damage needing
                # manual repair, Table 2's ≈).
                instance._next["bids"] = [100, 600]
                instance._next["feedback"] = [50_000, 50_500]
        self._log(f"pk-{mode.value}", "IdentityManager")

    def corrupt_jndi(self, component, mode):
        """Corrupt the JNDI repository entry for ``component``."""
        naming = self.server.naming
        if mode is CorruptionMode.NULL:
            naming._corrupt(component, None)
        elif mode is CorruptionMode.INVALID:
            naming._corrupt(component, "container-that-does-not-exist")
        else:
            others = [n for n in naming.bound_names() if n != component]
            # Deterministic "wrong" target: the lexicographically-nearest
            # other container.
            naming._corrupt(component, sorted(others)[0])
        self._log(f"jndi-{mode.value}", component)

    def corrupt_tx_method_map(self, component, method, mode):
        """Corrupt one entry of a container's transaction method map."""
        container = self._container(component)
        if method not in container.tx_method_map:
            raise KeyError(f"{component} has no tx attribute for {method!r}")
        if mode is CorruptionMode.NULL:
            container.tx_method_map[method] = None
        elif mode is CorruptionMode.INVALID:
            container.tx_method_map[method] = "NotAnAttribute"
        else:
            declared = container.descriptor.tx_methods[method]
            wrong = (
                TxAttribute.NOT_SUPPORTED
                if declared is not TxAttribute.NOT_SUPPORTED
                else TxAttribute.REQUIRED
            )
            container.tx_method_map[method] = wrong
        self._log(f"txmap-{mode.value}", f"{component}.{method}")

    def corrupt_session_bean_attribute(self, mode):
        """Corrupt stateless-session-bean instance attributes.

        null/invalid hit one CommitBid instance (expunged naturally after
        its first failed call); wrong zeroes CommitBid's ``min_increment``
        (bad dollar amounts reach the database) *and* breaks ViewItem's
        ``price_factor`` (wrong prices, which the WAR caches — EJB+WAR).
        """
        commit_bid = self._container("CommitBid").instances[0]
        if mode is CorruptionMode.NULL:
            commit_bid.min_increment = None
        elif mode is CorruptionMode.INVALID:
            commit_bid.min_increment = "not-a-number"
        else:
            for instance in self._container("CommitBid").instances:
                instance.min_increment = 0
            for instance in self._container("ViewItem").instances:
                instance.price_factor = 100
        self._log(f"bean-attr-{mode.value}", "CommitBid/ViewItem")

    # ------------------------------------------------------------------
    # State-store corruption
    # ------------------------------------------------------------------
    def corrupt_session_store(self, mode, session_ids=None):
        """Bit-flip session objects inside FastS (or SSM).

        Operates on the raw stored objects: with FastS the damage reaches
        the application; with SSM the checksum catches it on read.
        """
        store = self.server.session_store
        ids = list(session_ids or store.session_ids())
        if not ids:
            raise ValueError("no sessions to corrupt; log someone in first")
        if mode is CorruptionMode.NULL:
            for session_id in ids:
                store._raw(session_id).attributes = None
        elif mode is CorruptionMode.INVALID:
            for session_id in ids:
                store._raw(session_id).user_id = -424242
        else:
            if len(ids) < 2:
                raise ValueError("wrong-mode swap needs two sessions")
            for first_id, second_id in zip(ids[0::2], ids[1::2]):
                first, second = store._raw(first_id), store._raw(second_id)
                first.attributes, second.attributes = (
                    second.attributes, first.attributes,
                )
        self._log(f"session-store-{mode.value}", store.name)
        return ids

    def corrupt_database(self, table="items", mode=CorruptionMode.WRONG):
        """Manually alter table contents (Table 2's bottom app-data row)."""
        database = self.system.database
        rows = sorted(database.tables[table].rows)
        if not rows:
            raise ValueError(f"table {table} is empty")
        pk = rows[len(rows) // 2]
        if mode is CorruptionMode.NULL:
            database._corrupt_row(table, pk, "name", None)
        elif mode is CorruptionMode.INVALID:
            database._corrupt_row(table, pk, "max_bid", "garbage")
        else:
            database._corrupt_row(table, pk, "max_bid", 999999)
        self._log(f"database-{mode.value}", f"{table}:{pk}")
        return pk
