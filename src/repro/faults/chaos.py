"""Deterministic, seed-driven chaos campaigns over a cluster.

The paper's evaluation (§5.1) injects one fault at a time and waits for the
pipeline to recover.  This module schedules *correlated and overlapping*
faults over simulated time — the adversarial conditions the hardened
recovery pipeline (:mod:`repro.core.hardening`) exists to survive:

* **flap trains** — the same component is re-broken every few seconds,
  faster than the quarantine-less pipeline can usefully microreboot it;
* **correlated bursts** — several components across several nodes break at
  the same instant (a bad deploy, a poisoned cache), pushing every node's
  recovery manager over threshold at once;
* **infrastructure faults** — LB→node link degradation (forward delay +
  drops), node-level CPU slowdown from a process outside the JVM, and SSM
  brick outages that make *every* node's sessions temporarily unreadable.

Determinism: the whole schedule is precomputed at construction from one
dedicated RNG stream (fixed draw order), and the engine process applies
events at their precomputed simulated times.  Same seed → same schedule →
same simulation, which is what lets the parallel campaign runner merge
``--jobs N`` output byte-identically with ``--jobs 1``.
"""

from dataclasses import dataclass, field

from repro.faults.injector import FaultInjector

#: Front-line session beans whose URL paths clients actually exercise —
#: breaking these produces detectable end-to-end failures quickly.
COMPONENT_TARGETS = (
    "BrowseCategories",
    "BrowseRegions",
    "ViewItem",
    "SearchItemsByCategory",
    "ViewUserInfo",
)

#: Component-level fault kinds the engine draws from (all curable by µRB).
COMPONENT_FAULTS = ("transient-exception", "deadlock", "infinite-loop")


@dataclass(frozen=True)
class ChaosSpec:
    """Knobs for one chaos campaign (all times in simulated seconds)."""

    duration: float = 480.0  # fault window length
    start: float = 30.0  # quiet warmup before the first fault
    flap_trains: int = 1  # re-broken-component sequences
    flap_pulses: int = 6  # re-injections per train
    flap_interval: float = 12.0  # seconds between re-injections
    bursts: int = 2  # correlated multi-component bursts
    burst_size: int = 3  # simultaneous faults per burst
    link_faults: int = 1  # LB→node link degradations
    link_delay: float = 0.25  # extra forward delay while degraded
    link_drop_rate: float = 0.25  # forward drop probability
    link_duration: float = 45.0
    slowdowns: int = 1  # node-level CPU slowdowns
    slowdown_hogs: int = 3  # external hog processes per slowdown
    slowdown_duration: float = 60.0
    ssm_outages: int = 1  # SSM brick crashes (needs an SSM cluster)
    ssm_outage_duration: float = 40.0
    #: Concentrate each burst on a single node with *distinct* components —
    #: the multi-component-failure shape whose recovery the dependency-aware
    #: parallel scheduler overlaps.  Off by default so existing campaign
    #: schedules (and their seeds) are untouched.
    burst_same_node: bool = False
    #: Pin every burst fault to one kind instead of drawing from
    #: ``COMPONENT_FAULTS`` (None = draw, the historical behaviour).
    burst_fault: str = None
    #: Memory-leak injections (§6.4's fault class): each picks a node and
    #: a front-line component whose every invocation then leaks
    #: ``leak_bytes`` until the JVM restarts.  µRBs reclaim what has
    #: leaked so far but the code bug persists — the fault shape that
    #: separates reactive recovery (wait for OOM) from predictive
    #: (µRB the leaker before exhaustion).  Zero by default so existing
    #: campaign schedules (and their RNG draw order) are untouched.
    leak_faults: int = 0
    leak_bytes: int = 0  # bytes leaked per invocation
    #: Fraction of the fault window within which leaks start (early, so
    #: slow-burn exhaustion has room to play out before the horizon).
    leak_start_fraction: float = 0.15

    @classmethod
    def smoke(cls):
        """A short mix exercising every fault class (CI-sized)."""
        return cls(
            duration=240.0,
            flap_trains=1,
            flap_pulses=4,
            bursts=1,
            burst_size=2,
            link_faults=1,
            link_duration=30.0,
            slowdowns=1,
            slowdown_duration=40.0,
            ssm_outages=1,
            ssm_outage_duration=25.0,
        )

    @classmethod
    def standard(cls):
        """The default full campaign."""
        return cls()

    @classmethod
    def multiburst(cls):
        """Pure multi-component bursts on one node, no infrastructure noise.

        The shape that isolates the recovery *scheduler*: several distinct
        components on the same node fail at one instant, so serial recovery
        pays the full ladder one component at a time while the parallel
        scheduler overlaps the independent microreboots.  The fault kind is
        pinned to ``transient-exception`` — it fails fast (dense detection
        signal) and is cured exactly by a µRB of the faulted bean, so the
        arms differ only in how recovery is *scheduled*.
        """
        return cls(
            duration=180.0,
            flap_trains=0,
            bursts=2,
            burst_size=3,
            burst_same_node=True,
            burst_fault="transient-exception",
            link_faults=0,
            slowdowns=0,
            ssm_outages=0,
        )

    @classmethod
    def leaky(cls, leak_faults=3, leak_bytes=36 * 1024 * 1024,
              duration=420.0):
        """Pure slow-burn memory leaks, no other fault noise.

        The schedule that isolates *prediction*: distinct front-line
        components start leaking early in the window, heap drains over
        minutes, and nothing else breaks — so a reactive arm's failures
        are exactly the OOM exhaustion events a predictive arm should
        see coming and preempt.  The default per-invocation leak drains
        a node's ~890 MB of free heap in two-to-three minutes of
        traffic: fast enough that the reactive pipeline pays repeated
        OOM episodes (escalating to WAR/application restarts when µRBs
        of the leaker can't keep up), slow enough that the heap-trend
        alert fires minutes ahead of each exhaustion.
        """
        return cls(
            duration=duration,
            flap_trains=0,
            bursts=0,
            link_faults=0,
            slowdowns=0,
            ssm_outages=0,
            leak_faults=leak_faults,
            leak_bytes=leak_bytes,
        )


@dataclass
class ChaosEvent:
    """One scheduled injection or heal."""

    time: float
    kind: str  # e.g. "transient-exception", "link", "link-heal", ...
    node: int = None  # node index, or None for cluster-wide faults
    target: str = None  # component name, for component-level faults
    params: dict = field(default_factory=dict)
    applied_at: float = None  # stamped by the engine
    shard: str = None  # owning shard, for shard-targeted storm events


class ChaosEngine:
    """Precomputes a fault schedule and applies it over simulated time."""

    def __init__(self, cluster, spec=None, rng=None, name="chaos"):
        self.cluster = cluster
        self.spec = spec or ChaosSpec.standard()
        self.rng = rng if rng is not None else cluster.rng.stream("chaos")
        self.name = name
        self.injectors = [
            FaultInjector(node.system) for node in cluster.nodes
        ]
        #: Dedicated stream for the link drop draws, so routing-time
        #: randomness never perturbs the schedule stream.
        self._drop_rng = cluster.rng.stream("chaos-link-drops")
        self.schedule = self._build_schedule()
        self.applied = []
        self.counts = {}
        self._process = None

    @property
    def kernel(self):
        return self.cluster.kernel

    # ------------------------------------------------------------------
    # Schedule construction (all RNG draws happen here, in fixed order)
    # ------------------------------------------------------------------
    def _build_schedule(self):
        spec = self.spec
        rng = self.rng
        n_nodes = len(self.cluster.nodes)
        events = []

        def when(fraction_of_window=1.0):
            return spec.start + rng.uniform(
                0, spec.duration * fraction_of_window
            )

        for _train in range(spec.flap_trains):
            node = rng.randrange(n_nodes)
            component = rng.choice(COMPONENT_TARGETS)
            start = when(0.5)  # leave room for every pulse
            for pulse in range(spec.flap_pulses):
                events.append(
                    ChaosEvent(
                        time=start + pulse * spec.flap_interval,
                        kind="transient-exception",
                        node=node,
                        target=component,
                        params={"train": True, "pulse": pulse},
                    )
                )

        for _burst in range(spec.bursts):
            start = when()
            if spec.burst_same_node:
                # One node, distinct components: the multi-component shape
                # the parallel scheduler recovers concurrently.
                node = rng.randrange(n_nodes)
                components = rng.sample(
                    COMPONENT_TARGETS,
                    min(spec.burst_size, len(COMPONENT_TARGETS)),
                )
                for component in components:
                    events.append(
                        ChaosEvent(
                            time=start,
                            kind=(
                                spec.burst_fault
                                or rng.choice(COMPONENT_FAULTS)
                            ),
                            node=node,
                            target=component,
                            params={"burst": True},
                        )
                    )
            else:
                for _i in range(spec.burst_size):
                    node = rng.randrange(n_nodes)
                    component = rng.choice(COMPONENT_TARGETS)
                    kind = spec.burst_fault or rng.choice(COMPONENT_FAULTS)
                    events.append(
                        ChaosEvent(
                            time=start, kind=kind, node=node,
                            target=component, params={"burst": True},
                        )
                    )

        for _fault in range(spec.link_faults):
            node = rng.randrange(n_nodes)
            start = when(0.8)
            events.append(
                ChaosEvent(
                    time=start, kind="link", node=node,
                    params={
                        "delay": spec.link_delay,
                        "drop_rate": spec.link_drop_rate,
                    },
                )
            )
            events.append(
                ChaosEvent(
                    time=start + spec.link_duration, kind="link-heal",
                    node=node,
                )
            )

        for _slowdown in range(spec.slowdowns):
            node = rng.randrange(n_nodes)
            start = when(0.8)
            events.append(
                ChaosEvent(
                    time=start, kind="slowdown", node=node,
                    params={"hogs": spec.slowdown_hogs},
                )
            )
            events.append(
                ChaosEvent(
                    time=start + spec.slowdown_duration,
                    kind="slowdown-heal", node=node,
                )
            )

        leak_targets = set()
        for _leak in range(spec.leak_faults):
            node = rng.randrange(n_nodes)
            component = rng.choice(COMPONENT_TARGETS)
            if (node, component) in leak_targets:
                continue  # same component twice = double rate, skip it
            leak_targets.add((node, component))
            events.append(
                ChaosEvent(
                    time=when(spec.leak_start_fraction),
                    kind="memory-leak",
                    node=node,
                    target=component,
                    params={"bytes": spec.leak_bytes},
                )
            )

        if self.cluster.ssm is not None:
            for _outage in range(spec.ssm_outages):
                start = when(0.8)
                events.append(ChaosEvent(time=start, kind="ssm-crash"))
                events.append(
                    ChaosEvent(
                        time=start + spec.ssm_outage_duration,
                        kind="ssm-restart",
                    )
                )

        # Stable order: by time, ties broken by construction order (the
        # sort is stable), so identical seeds replay identically.
        events.sort(key=lambda event: event.time)
        return events

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self):
        """Spawn the engine's kernel process."""
        if self._process is None or not self._process.is_alive:
            self._process = self.kernel.process(
                self._run(), name=f"{self.name}-engine"
            )
        return self._process

    def _run(self):
        self.kernel.trace.publish(
            "chaos.begin", events=len(self.schedule),
            horizon=self.spec.start + self.spec.duration,
        )
        for event in self.schedule:
            delay = event.time - self.kernel.now
            if delay > 0:
                yield self.kernel.timeout(delay)
            self._apply(event)
        self.kernel.trace.publish("chaos.end", applied=len(self.applied))

    def _apply(self, event):
        kind = event.kind
        cluster = self.cluster
        node = cluster.nodes[event.node] if event.node is not None else None
        if kind == "transient-exception":
            self.injectors[event.node].inject_transient_exception(event.target)
        elif kind == "deadlock":
            self.injectors[event.node].inject_deadlock(event.target)
        elif kind == "infinite-loop":
            self.injectors[event.node].inject_infinite_loop(event.target)
        elif kind == "memory-leak":
            self.injectors[event.node].inject_memory_leak(
                event.target, event.params["bytes"]
            )
        elif kind == "link":
            cluster.load_balancer.inject_link_fault(
                node,
                delay=event.params["delay"],
                drop_rate=event.params["drop_rate"],
                rng=self._drop_rng,
            )
        elif kind == "link-heal":
            cluster.load_balancer.clear_link_fault(node)
        elif kind == "slowdown":
            node.inject_slowdown(hogs=event.params["hogs"])
        elif kind == "slowdown-heal":
            node.clear_slowdown()
        elif kind == "ssm-crash":
            cluster.ssm.crash()
        elif kind == "ssm-restart":
            cluster.ssm.restart()
        else:  # pragma: no cover - schedule builder only emits the above
            raise ValueError(f"unknown chaos event kind {kind!r}")
        event.applied_at = self.kernel.now
        self.applied.append(event)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.kernel.trace.publish(
            "chaos.event",
            kind=kind,
            node=node.name if node is not None else None,
            target=event.target,
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def timeline(self):
        """Applied events as plain dicts (for JSON-able campaign output)."""
        return [
            {
                "time": round(event.applied_at, 6),
                "kind": event.kind,
                "node": event.node,
                "target": event.target,
            }
            for event in self.applied
        ]


# ----------------------------------------------------------------------
# Shard-targeted storms over a consistent-hash sharded cluster
# ----------------------------------------------------------------------

#: Shard-level fault kinds a storm cycles through.  ``deadlock`` is a
#: pulse train the recovery pipeline must repeatedly cure; ``link``
#: degrades every LB→node link of the shard (the LB's degradation marks
#: and ring failover contain it); ``brick-crash`` takes one SSM brick
#: (the replica absorbs it); ``slowdown`` saturates the shard's nodes
#: with external CPU hogs.
STORM_KINDS = ("deadlock", "link", "brick-crash", "slowdown")


@dataclass(frozen=True)
class StormSpec:
    """Knobs for one multi-shard storm (times in simulated seconds)."""

    start: float = 60.0  # quiet warmup before the storm front
    duration: float = 120.0  # how long injected conditions persist
    k_shards: int = 8  # how many shards the storm hits
    #: 0 = all K shards fault at the same instant; >0 = a rolling wave,
    #: shard i faulting at ``start + i * wave_interval``.
    wave_interval: float = 0.0
    kinds: tuple = STORM_KINDS  # cycled over the struck shards, in order
    deadlock_target: str = "BrowseCategories"
    pulse_interval: float = 15.0  # deadlock re-injection cadence
    link_delay: float = 0.2  # extra forward delay on faulted links
    link_drop_rate: float = 0.35  # forward drop probability
    slowdown_hogs: int = 3

    @classmethod
    def smoke(cls):
        """CI-sized: four shards, one of each fault kind."""
        return cls(start=20.0, duration=60.0, k_shards=4)

    @classmethod
    def standard(cls):
        """The acceptance configuration: K=8 simultaneous shards."""
        return cls()


class ShardStormEngine:
    """Correlated multi-shard faults on a sharded cluster.

    The storm strikes ``k_shards`` distinct shards (drawn from a
    dedicated ``storm`` RNG stream, so the schedule is a pure function of
    the seed), assigning each struck shard one fault kind by cycling
    ``spec.kinds``.  The whole schedule — times, shards, kinds, targets —
    is precomputed at construction; node/group *objects* are snapshotted
    then too, so heal events still find their target even if elastic
    resharding has since removed the shard from the live cluster (the
    heal becomes a harmless no-op on a drained shard).
    """

    def __init__(self, cluster, spec=None, rng=None, name="storm"):
        self.cluster = cluster
        self.spec = spec or StormSpec.standard()
        self.rng = rng if rng is not None else cluster.rng.stream("storm")
        self.name = name
        #: Dedicated stream for link drop draws (routing-time randomness
        #: must never perturb the schedule stream).
        self._drop_rng = cluster.rng.stream("storm-link-drops")
        if self.spec.k_shards > len(cluster.shard_names):
            raise ValueError(
                f"storm wants {self.spec.k_shards} shards but the cluster "
                f"has {len(cluster.shard_names)}"
            )
        self.storm_shards = tuple(
            self.rng.sample(list(cluster.shard_names), self.spec.k_shards)
        )
        #: Snapshots: the storm keeps injecting/healing against the
        #: topology it was scheduled on, independent of later resharding.
        self._shard_nodes = {
            shard: list(cluster.shard_nodes[shard])
            for shard in self.storm_shards
        }
        self._shard_groups = {
            shard: cluster.shard_groups[shard] for shard in self.storm_shards
        }
        self._injectors = {
            node.name: FaultInjector(node.system)
            for shard in self.storm_shards
            for node in self._shard_nodes[shard]
        }
        self.schedule = self._build_schedule()
        self.applied = []
        self.counts = {}
        self._process = None

    @property
    def kernel(self):
        return self.cluster.kernel

    def shard_kind(self, shard):
        """The fault kind the storm assigned to ``shard`` (or None)."""
        for i, struck in enumerate(self.storm_shards):
            if struck == shard:
                return self.spec.kinds[i % len(self.spec.kinds)]
        return None

    # ------------------------------------------------------------------
    def _build_schedule(self):
        spec = self.spec
        events = []
        for i, shard in enumerate(self.storm_shards):
            kind = spec.kinds[i % len(spec.kinds)]
            onset = spec.start + i * spec.wave_interval
            horizon = spec.start + spec.duration
            if kind == "deadlock":
                # A pulse train: recovery cures each pulse, the storm
                # re-breaks it — the sustained-pressure shape quarantine
                # and the storm limiter exist for.
                t = onset
                pulse = 0
                while t < horizon:
                    events.append(
                        ChaosEvent(
                            time=t, kind="deadlock", shard=shard,
                            target=spec.deadlock_target,
                            params={"pulse": pulse},
                        )
                    )
                    t += spec.pulse_interval
                    pulse += 1
            elif kind == "link":
                events.append(
                    ChaosEvent(
                        time=onset, kind="link", shard=shard,
                        params={
                            "delay": spec.link_delay,
                            "drop_rate": spec.link_drop_rate,
                        },
                    )
                )
                events.append(
                    ChaosEvent(time=horizon, kind="link-heal", shard=shard)
                )
            elif kind == "brick-crash":
                events.append(
                    ChaosEvent(time=onset, kind="brick-crash", shard=shard)
                )
                events.append(
                    ChaosEvent(time=horizon, kind="brick-heal", shard=shard)
                )
            elif kind == "slowdown":
                events.append(
                    ChaosEvent(
                        time=onset, kind="slowdown", shard=shard,
                        params={"hogs": spec.slowdown_hogs},
                    )
                )
                events.append(
                    ChaosEvent(
                        time=horizon, kind="slowdown-heal", shard=shard
                    )
                )
            else:  # pragma: no cover - spec validation
                raise ValueError(f"unknown storm kind {kind!r}")
        events.sort(key=lambda event: event.time)
        return events

    # ------------------------------------------------------------------
    def start(self):
        if self._process is None or not self._process.is_alive:
            self._process = self.kernel.process(
                self._run(), name=f"{self.name}-engine"
            )
        return self._process

    def _run(self):
        self.kernel.trace.publish(
            "storm.begin",
            shards=self.storm_shards,
            events=len(self.schedule),
            horizon=self.spec.start + self.spec.duration,
        )
        for event in self.schedule:
            delay = event.time - self.kernel.now
            if delay > 0:
                yield self.kernel.timeout(delay)
            self._apply(event)
        self.kernel.trace.publish("storm.end", applied=len(self.applied))

    def _apply(self, event):
        kind = event.kind
        nodes = self._shard_nodes[event.shard]
        balancer = self.cluster.load_balancer
        if kind == "deadlock":
            for node in nodes:
                self._injectors[node.name].inject_deadlock(event.target)
        elif kind == "link":
            for node in nodes:
                balancer.inject_link_fault(
                    node,
                    delay=event.params["delay"],
                    drop_rate=event.params["drop_rate"],
                    rng=self._drop_rng,
                )
        elif kind == "link-heal":
            for node in nodes:
                balancer.clear_link_fault(node)
        elif kind == "brick-crash":
            self._shard_groups[event.shard].crash_brick(0)
        elif kind == "brick-heal":
            self._shard_groups[event.shard].restart_brick(0)
        elif kind == "slowdown":
            for node in nodes:
                node.inject_slowdown(hogs=event.params["hogs"])
        elif kind == "slowdown-heal":
            for node in nodes:
                node.clear_slowdown()
        else:  # pragma: no cover - schedule builder only emits the above
            raise ValueError(f"unknown storm event kind {kind!r}")
        event.applied_at = self.kernel.now
        self.applied.append(event)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.kernel.trace.publish(
            "storm.event", kind=kind, shard=event.shard, target=event.target
        )

    # ------------------------------------------------------------------
    def timeline(self):
        """Applied events as plain dicts (for JSON-able campaign output)."""
        return [
            {
                "time": round(event.applied_at, 6),
                "kind": event.kind,
                "shard": event.shard,
                "target": event.target,
            }
            for event in self.applied
        ]

    def planned_schedule(self):
        """The precomputed schedule as plain dicts (determinism gating)."""
        return [
            {
                "time": round(event.time, 6),
                "kind": event.kind,
                "shard": event.shard,
                "target": event.target,
            }
            for event in self.schedule
        ]
