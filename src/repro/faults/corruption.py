"""The paper's three data-corruption modes (§5.1).

"(a) set a value to null, which will generally elicit a
NullPointerException upon access; (b) set an invalid value, i.e., a
non-null value that type-checks but is invalid from the application's point
of view ...; and (c) set to a wrong value, which is valid from the
application's point of view, but incorrect."
"""

import enum


class CorruptionMode(enum.Enum):
    NULL = "null"
    INVALID = "invalid"
    WRONG = "wrong"
