"""Fault injection (§5.1).

The hooks mirror what the paper's industry contacts report plaguing
production J2EE systems: deadlocked threads, infinite loops, leak-induced
resource exhaustion, bug-induced corruption of volatile metadata, and
incorrectly-handled transient exceptions — plus FIG/FAUmachine-style
low-level faults injected underneath the JVM layer.

Injection corrupts *real* data structures (the JNDI map, transaction method
maps, the primary-key generator, instance attributes, store contents), so
failures manifest organically when request processing touches the damage,
and a microreboot cures them only because it genuinely discards and
reconstructs that state.
"""

from repro.faults.chaos import ChaosEngine, ChaosEvent, ChaosSpec
from repro.faults.corruption import CorruptionMode
from repro.faults.injector import FaultInjector, InjectedFault
from repro.faults.lowlevel import LowLevelInjector

__all__ = [
    "ChaosEngine",
    "ChaosEvent",
    "ChaosSpec",
    "CorruptionMode",
    "FaultInjector",
    "InjectedFault",
    "LowLevelInjector",
]
