"""repro — a reproduction of "Microreboot: A Technique for Cheap Recovery".

George Candea, Shinichi Kawamoto, Yuichi Fujiki, Greg Friedman, Armando
Fox.  Proc. 6th Symposium on Operating Systems Design and Implementation
(OSDI), December 2004.

The package is organized bottom-up:

* :mod:`repro.sim` — discrete-event simulation kernel.
* :mod:`repro.appserver` — the J2EE application-server substrate.
* :mod:`repro.stores` — state stores (database, FastS, SSM, static files).
* :mod:`repro.core` — **the paper's contribution**: microreboot machinery,
  recovery groups, the recursive recovery manager, microrejuvenation, and
  call-retry masking.
* :mod:`repro.ebid` — the crash-only auction application.
* :mod:`repro.faults` — fault injection.
* :mod:`repro.detection` — client-side and comparison-based detectors.
* :mod:`repro.workload` — the Markov client emulator and the Taw metric.
* :mod:`repro.cluster` — multi-node clusters with (micro)failover.
* :mod:`repro.experiments` — one harness per paper table/figure.

Quickstart::

    from repro import build_ebid_system, FaultInjector

    system = build_ebid_system()
    injector = FaultInjector(system)
    injector.inject_transient_exception("BrowseCategories")
    event = system.kernel.process(
        system.coordinator.microreboot(["BrowseCategories"])
    )
    system.kernel.run_until_triggered(event)
"""

from repro.cluster import Cluster, FailoverMode, LoadBalancer, Node, build_cluster
from repro.core import (
    FailureKind,
    FailureReport,
    MicrocheckpointStore,
    MicrorebootCoordinator,
    RecoveryManager,
    RejuvenationService,
    RetryPolicy,
    compute_recovery_groups,
)
from repro.detection import ComparisonDetector, SimpleDetector
from repro.ebid import DatasetConfig, EbidSystem, build_ebid_system
from repro.faults import CorruptionMode, FaultInjector, LowLevelInjector
from repro.sim import Kernel, RngRegistry
from repro.workload import (
    ClientPopulation,
    EmulatedClient,
    TawAccounting,
    WorkloadProfile,
)

__version__ = "1.0.0"

__all__ = [
    "ClientPopulation",
    "Cluster",
    "ComparisonDetector",
    "CorruptionMode",
    "DatasetConfig",
    "EbidSystem",
    "EmulatedClient",
    "FailoverMode",
    "FailureKind",
    "FailureReport",
    "FaultInjector",
    "Kernel",
    "LoadBalancer",
    "LowLevelInjector",
    "MicrocheckpointStore",
    "MicrorebootCoordinator",
    "Node",
    "RecoveryManager",
    "RejuvenationService",
    "RetryPolicy",
    "RngRegistry",
    "SimpleDetector",
    "TawAccounting",
    "WorkloadProfile",
    "build_cluster",
    "build_ebid_system",
    "compute_recovery_groups",
]
