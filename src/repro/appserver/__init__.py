"""The application-server substrate (JBoss/J2EE analogue).

The paper adds microreboot machinery to JBoss and runs a crash-only J2EE
application on it.  This package is our from-scratch stand-in for that
platform: component containers with instance pools, a naming service (the
JNDI analogue), deployment descriptors and a deployer, a transaction manager,
per-component classloaders, a JVM heap model with per-owner attribution, a
processor-sharing CPU model, and the HTTP front end.

Everything here is generic platform code: the eBid application in
:mod:`repro.ebid` is deployed onto it, and the microreboot machinery in
:mod:`repro.core` operates on it.
"""

from repro.appserver.component import (
    Component,
    EntityBean,
    InvocationContext,
    StatelessSessionBean,
    WebComponent,
)
from repro.appserver.container import Container, ContainerState
from repro.appserver.cpu import ProcessorSharingCpu
from repro.appserver.descriptors import ComponentKind, DeploymentDescriptor
from repro.appserver.errors import (
    AppServerError,
    ApplicationException,
    ComponentUnavailableError,
    InvocationError,
    NamingError,
    OutOfMemoryError_,
    ServerDownError,
    TransactionError,
)
from repro.appserver.http import HttpRequest, HttpResponse, HttpStatus
from repro.appserver.memory import HeapModel
from repro.appserver.naming import NamingService, Sentinel
from repro.appserver.server import ApplicationServer, ServerState
from repro.appserver.timing import TimingModel
from repro.appserver.transactions import Transaction, TransactionManager

__all__ = [
    "AppServerError",
    "ApplicationException",
    "ApplicationServer",
    "Component",
    "ComponentKind",
    "ComponentUnavailableError",
    "Container",
    "ContainerState",
    "DeploymentDescriptor",
    "EntityBean",
    "HeapModel",
    "HttpRequest",
    "HttpResponse",
    "HttpStatus",
    "InvocationContext",
    "InvocationError",
    "NamingError",
    "NamingService",
    "OutOfMemoryError_",
    "ProcessorSharingCpu",
    "Sentinel",
    "ServerDownError",
    "ServerState",
    "StatelessSessionBean",
    "TimingModel",
    "Transaction",
    "TransactionError",
    "TransactionManager",
    "WebComponent",
]
