"""Deployment descriptors: the platform's metadata about components.

A J2EE application ships portable components plus XML deployment descriptor
files; the application server uses them to instantiate containers, wire
references, and — in the paper's prototype — to compute *recovery groups*
(§3.2): the transitive closure of inter-EJB references that must be
microrebooted together.
"""

import enum
from dataclasses import dataclass, field


class ComponentKind(enum.Enum):
    """The component flavours eBid uses (§3.3)."""

    ENTITY = "entity"
    STATELESS_SESSION = "stateless-session"
    WEB = "web"  # the WAR: servlets + JSPs


class TxAttribute(enum.Enum):
    """Transaction demarcation attributes (the J2EE subset we need)."""

    REQUIRED = "Required"  # join or start a transaction
    NOT_SUPPORTED = "NotSupported"  # run outside any transaction
    SUPPORTS = "Supports"  # join if present, else run without


@dataclass
class DeploymentDescriptor:
    """Everything the deployer needs to know about one component.

    Attributes:
        name: the component's JNDI name.
        kind: entity bean, stateless session bean, or web component.
        factory: callable returning a fresh component instance.
        references: names of components this one calls.  Entity-to-entity
            references put components into the same recovery group; session
            beans obtain entity references through JNDI and stay out of the
            group.
        group_references: names this component is *reboot-coupled* to — the
            metadata relationships that "can span containers" (§3.2).  The
            recovery-group computation takes the transitive closure of
            these.
        crash_time: seconds to forcefully destroy the component's instances
            and metadata.
        reinit_time: seconds to verify, re-instantiate, and start the
            component (deployer verification, container setup, instance
            pool, security context, JNDI binding, ``start()``).
        tx_methods: method name → :class:`TxAttribute`; the per-container
            "transaction method map" that fault injection corrupts.
        pool_size: instances kept in the container's pool.
        table: for entity beans, the database table backing instances.
    """

    name: str
    kind: ComponentKind
    factory: callable
    references: tuple = ()
    group_references: tuple = ()
    crash_time: float = 0.010
    reinit_time: float = 0.450
    tx_methods: dict = field(default_factory=dict)
    pool_size: int = 4
    table: str = None

    def __post_init__(self):
        self.references = tuple(self.references)
        self.group_references = tuple(self.group_references)
        if self.kind is ComponentKind.ENTITY and self.table is None:
            raise ValueError(f"entity bean {self.name!r} needs a backing table")

    @property
    def microreboot_time(self):
        """Total single-component µRB time (Table 3's leftmost column)."""
        return self.crash_time + self.reinit_time

    def tx_attribute(self, method):
        """Transaction attribute for ``method`` (default Supports)."""
        return self.tx_methods.get(method, TxAttribute.SUPPORTS)
