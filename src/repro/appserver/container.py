"""Per-component management containers.

"There is one container per EJB object, and it manages all instances of that
object" (§3.1).  The container owns the instance pool, the volatile
transaction-method map (a fault-injection target), the set of in-flight
invocations (the shepherd threads a microreboot must kill), and the
interceptor chain every call passes through.
"""

import enum

from repro.appserver.component import StatelessSessionBean
from repro.appserver.descriptors import TxAttribute
from repro.appserver.errors import (
    AppServerError,
    ComponentUnavailableError,
    InvocationError,
    TransactionError,
)


class ContainerState(enum.Enum):
    STOPPED = "stopped"
    RUNNING = "running"
    MICROREBOOTING = "microrebooting"


class Container:
    """Lifecycle manager and call mediator for one component."""

    def __init__(self, server, descriptor, classloader):
        self.server = server
        self.descriptor = descriptor
        self.classloader = classloader
        self.name = descriptor.name
        self.state = ContainerState.STOPPED
        self.instances = []
        self._round_robin = 0
        #: Volatile copy of the descriptor's transaction attributes; rebuilt
        #: on every (re)initialization, corruptible by fault injection.
        self.tx_method_map = {}
        #: In-flight invocations: ctx -> method name.  A microreboot kills
        #: the shepherd process of every ctx present here.
        self.active_invocations = {}
        #: Fault-injection extension points: generators run before dispatch.
        #: ``invocation_hooks`` model faults lodged in the component's
        #: volatile state (cleared when a microreboot rebuilds it);
        #: ``persistent_invocation_hooks`` model bugs in the code itself
        #: (e.g. a leak on every invocation), which no reboot removes.
        self.invocation_hooks = []
        self.persistent_invocation_hooks = []
        self.invocation_count = 0
        self.failed_invocation_count = 0
        self.generation = 0  # bumped by every (re)initialization
        #: Names of reboot-coupled peer components (symmetric closure of the
        #: descriptors' group_references; filled in by the server's deploy).
        self.group_peers = set()
        #: Peer name -> the peer generation this container's metadata was
        #: built against.  Captured lazily on first use; a mismatch means a
        #: peer was recycled without this container — a stale reference.
        self._peer_generations = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def initialize(self):
        """(Re)build instances and volatile metadata; container goes live.

        Timing (the descriptor's ``reinit_time``) is charged by whoever
        drives the lifecycle — the deployer on start-up, the microreboot
        coordinator during recovery — because those paths overlap work
        differently (§5.2).
        """
        self.tx_method_map = dict(self.descriptor.tx_methods)
        self.instances = [self._new_instance() for _ in range(self.descriptor.pool_size)]
        self._round_robin = 0
        self._peer_generations = {}
        self.generation += 1
        self.state = ContainerState.RUNNING

    def destroy(self, cause="shutdown"):
        """Forcefully stop: kill shepherd threads, drop instances/metadata.

        Implements the destructive half of a µRB (§3.2): "destroys all
        extant instances, kills all shepherding threads associated with
        those instances, releases all associated resources, discards server
        metadata maintained on behalf of the component".  The classloader is
        deliberately *not* touched here.
        """
        interrupted = sum(
            1 for ctx in self.active_invocations if ctx.shepherd_process is not None
        )
        self.server.kernel.trace.publish(
            "component.destroy",
            component=self.name,
            cause=cause,
            interrupted_threads=interrupted,
        )
        for ctx in list(self.active_invocations):
            if ctx.shepherd_process is not None:
                ctx.shepherd_process.interrupt(cause=f"{cause}:{self.name}")
        self.active_invocations.clear()
        for instance in self.instances:
            instance.on_stop()
        self.instances = []
        self.tx_method_map = {}
        self.invocation_hooks = []
        if self.state is not ContainerState.MICROREBOOTING:
            self.state = ContainerState.STOPPED

    def _new_instance(self):
        instance = self.descriptor.factory()
        instance.setup(self)
        instance.on_start()
        return instance

    def _pick_instance(self):
        if not self.instances:
            raise AppServerError(f"container {self.name!r} has no instances")
        instance = self.instances[self._round_robin % len(self.instances)]
        self._round_robin += 1
        return instance

    def _discard_instance(self, instance):
        """Replace a failed stateless-session instance with a fresh one.

        Standard EJB behaviour, and the reason corrupted instance attributes
        are "naturally expunged from the system after the first call fails"
        (Table 2).
        """
        try:
            index = self.instances.index(instance)
        except ValueError:
            return
        instance.failed = True
        instance.on_stop()
        self.instances[index] = self._new_instance()

    # ------------------------------------------------------------------
    # Invocation (the interceptor chain)
    # ------------------------------------------------------------------
    def invoke(self, ctx, method, args, kwargs):
        """Generator: dispatch one call through the interceptor chain.

        When the request carries a trace, the whole dispatch — including
        the state checks and fault hooks that run *before* an instance is
        picked — is bracketed by a span, so a component whose injected
        fault fires pre-dispatch still shows up on the failed path (the
        property Pinpoint-style localization depends on).
        """
        trace = ctx.trace
        if trace is None:
            result = yield from self._invoke(ctx, method, args, kwargs)
            return result
        parent = ctx.current_span
        span = trace.start_span(self.name, parent=parent)
        if span is not None:
            ctx.current_span = span
        try:
            result = yield from self._invoke(ctx, method, args, kwargs)
        except BaseException as exc:
            if span is not None:
                trace.finish_span(span, outcome=type(exc).__name__)
            ctx.current_span = parent
            raise
        if span is not None:
            trace.finish_span(span, outcome=None)
        ctx.current_span = parent
        return result

    def _invoke(self, ctx, method, args, kwargs):
        self.server.assert_running()
        if self.state is ContainerState.MICROREBOOTING:
            raise ComponentUnavailableError(
                self.name, retry_after=self.descriptor.microreboot_time
            )
        if self.state is ContainerState.STOPPED:
            raise ComponentUnavailableError(self.name)
        self.server.heap.check_allocation()
        self._validate_group_references()

        # The shepherd thread is "inside" the component from here on:
        # faults injected via hooks (deadlocks, infinite loops) stall
        # threads that a microreboot must be able to find and kill.
        self.active_invocations[ctx] = method
        began_tx = suspended_tx = None
        instance = None
        saved_write_count = None
        try:
            for hook in list(self.persistent_invocation_hooks) + list(
                self.invocation_hooks
            ):
                yield from hook(self, ctx, method)

            began_tx, suspended_tx = self._apply_tx_attribute(ctx, method)
            instance = self._pick_instance()
            saved_write_count = ctx.nontx_write_count
            ctx.nontx_write_count = 0
            self.invocation_count += 1
            if ctx.transaction is not None:
                ctx.transaction.touch(self.name)
            ctx.call_path.append(self.name)

            handler = getattr(instance, method, None)
            if method.startswith("_") or not callable(handler):
                raise InvocationError(
                    f"container {self.name!r} does not implement {method!r}"
                )
            result = yield from handler(ctx, *args, **kwargs)
            self._post_invoke_demarcation_check(ctx, method)
        except BaseException:
            self.failed_invocation_count += 1
            if (
                instance is not None
                and isinstance(instance, StatelessSessionBean)
                and self.instances
            ):
                self._discard_instance(instance)
            if began_tx is not None and began_tx.is_active:
                self.server.transactions.rollback(began_tx)
                ctx.transaction = None
            raise
        else:
            if began_tx is not None and began_tx.is_active:
                self.server.transactions.commit(began_tx)
                ctx.transaction = None
            return result
        finally:
            self.active_invocations.pop(ctx, None)
            if saved_write_count is not None:
                ctx.nontx_write_count += saved_write_count
            if suspended_tx is not None:
                ctx.transaction = suspended_tx

    def _validate_group_references(self):
        """Fail fast on metadata references into a recycled group peer.

        The first invocation after a (re)initialization snapshots each
        reboot-coupled peer's generation — the incarnation this container's
        cross-container metadata now refers to.  If a peer is later
        recycled *without* this container (something the microreboot
        coordinator's group expansion prevents, and an ablated coordinator
        does not), the dangling reference surfaces here.
        """
        from repro.appserver.errors import StaleReferenceError

        for peer_name in self.group_peers:
            peer = self.server.containers.get(peer_name)
            if peer is None or peer.state is not ContainerState.RUNNING:
                continue  # unavailable peers fail later, through naming
            cached = self._peer_generations.get(peer_name)
            if cached is None:
                self._peer_generations[peer_name] = peer.generation
            elif cached != peer.generation:
                raise StaleReferenceError(self.name, peer_name)

    def _apply_tx_attribute(self, ctx, method):
        """Transaction interceptor: demarcate per the (volatile) method map.

        Returns ``(began_tx, suspended_tx)``.  Raises TransactionError for
        corrupted map entries: a null entry elicits the NPE-style failure
        the paper injects, a type-invalid entry an "unknown attribute"
        failure.  A *wrong* (valid but different) attribute is applied
        as-is — the damage surfaces later, in the post-invocation check.
        """
        if method not in self.tx_method_map and method not in self.descriptor.tx_methods:
            # Method has no declared demarcation: default Supports.
            return None, None
        if method not in self.tx_method_map:
            raise TransactionError(
                f"transaction method map of {self.name!r} lost entry {method!r}"
            )
        attribute = self.tx_method_map[method]
        if attribute is None:
            raise TransactionError(
                f"null transaction attribute for {self.name}.{method}"
            )
        if not isinstance(attribute, TxAttribute):
            raise TransactionError(
                f"invalid transaction attribute {attribute!r} "
                f"for {self.name}.{method}"
            )
        if attribute is TxAttribute.REQUIRED:
            if ctx.transaction is None:
                ctx.transaction = self.server.transactions.begin(ctx)
                return ctx.transaction, None
            return None, None
        if attribute is TxAttribute.NOT_SUPPORTED:
            suspended, ctx.transaction = ctx.transaction, None
            return None, suspended
        return None, None  # SUPPORTS

    def _post_invoke_demarcation_check(self, ctx, method):
        """Detect methods that ran outside their declared transaction.

        When the volatile map was corrupted to a *wrong* attribute, a method
        declared ``Required`` completes having auto-committed its writes
        individually.  The container notices the mismatch here — after the
        writes have already been flushed — so the failure is visible to the
        caller *and* partial state persists in the database, reproducing the
        ``≈`` (manual repair) outcome of Table 2.
        """
        declared = self.descriptor.tx_methods.get(method)
        if (
            declared is TxAttribute.REQUIRED
            and ctx.transaction is None
            and ctx.nontx_write_count > 0
        ):
            raise TransactionError(
                f"{self.name}.{method} is declared Required but completed "
                f"with {ctx.nontx_write_count} auto-committed write(s)"
            )

    def __repr__(self):
        return f"<Container {self.name!r} {self.state.value}>"
