"""Exception hierarchy for the application-server platform.

The split mirrors the failure taxonomy the paper's detectors care about:
platform-level conditions (server down, component unavailable, out of
memory), application-level exceptions (the "various Java exceptions handled
incorrectly" of §5.1), and naming / transaction / invocation errors elicited
by metadata corruption.
"""


class AppServerError(Exception):
    """Base class for all platform errors."""


class ServerDownError(AppServerError):
    """The server process is not accepting connections (JVM down or OS down).

    Clients observe this as a network-level error ("cannot connect to
    server"), one of the signals the paper's simple fault detector uses.
    """


class ComponentUnavailableError(AppServerError):
    """A call reached a component that is currently microrebooting.

    When the retry machinery of §6.2 is enabled, this carries the estimated
    recovery time so the web tier can answer ``503 Retry-After``.
    """

    def __init__(self, component, retry_after=None):
        super().__init__(f"component {component!r} is unavailable")
        self.component = component
        self.retry_after = retry_after


class NamingError(AppServerError):
    """A JNDI lookup failed (unbound name or corrupted entry)."""

    def __init__(self, name, reason="not bound"):
        super().__init__(f"naming lookup of {name!r} failed: {reason}")
        self.name = name
        self.reason = reason


class InvocationError(AppServerError):
    """A call could not be dispatched (e.g. no such method on the target).

    This is what a *wrong* JNDI entry elicits: the call lands on a container
    that does not implement the requested method.
    """


class TransactionError(AppServerError):
    """Transaction demarcation or completion failed."""


class ApplicationException(AppServerError):
    """An exception escaping application code (the EJB's business logic)."""

    def __init__(self, component, message):
        super().__init__(f"exception in {component}: {message}")
        self.component = component


class OutOfMemoryError_(AppServerError):
    """The simulated JVM heap is exhausted.

    Named with a trailing underscore to avoid shadowing the Python builtin
    while keeping the Java name recognizable.
    """


class RequestTimeoutError(AppServerError):
    """A request exceeded the client's patience (stuck thread, deadlock)."""


class DataCorruptionError(AppServerError):
    """A state store detected corrupted data (e.g. an SSM checksum miss)."""


class StaleReferenceError(AppServerError):
    """A cross-container metadata reference points at a recycled peer.

    This is why recovery groups exist (§3.2): "EJBs might maintain
    references to other EJBs and ... certain metadata relationships can
    span containers".  Microrebooting one member of a coupled group leaves
    its peers holding references to the destroyed incarnation; the next
    invocation through such a reference fails here.  The microreboot
    coordinator avoids this by always recycling the transitive closure.
    """

    def __init__(self, component, peer):
        super().__init__(
            f"{component} holds a stale reference to {peer} "
            f"(peer was recycled without its recovery group)"
        )
        self.component = component
        self.peer = peer
