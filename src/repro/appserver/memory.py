"""JVM heap model with per-owner attribution.

The paper's microrejuvenation service (§6.4) works because the platform can
observe how much memory each component's microreboot releases.  We model the
heap as a fixed-capacity pool with a baseline footprint (server + application
code and caches) plus *leaked* bytes attributed to an owner: a component
name, or the reserved owners below for leaks outside the application
(§5.1's "JVM memory exhaustion outside the application").

Owners:
    component name   freed by microrebooting that component
    OWNER_SERVER     intra-JVM leak outside the application; only a JVM
                     restart frees it
    OWNER_EXTERNAL   leak outside the JVM entirely (another OS process);
                     only an OS reboot frees it — tracked by the node's OS
                     model, included here for a uniform API
"""

from repro.appserver.errors import OutOfMemoryError_

OWNER_SERVER = "<server>"
OWNER_EXTERNAL = "<external>"

#: Default heap size: the paper's middle-tier nodes have 1 GB of RAM and a
#: 1 GB heap is used in the Figure 6 rejuvenation experiment.
DEFAULT_CAPACITY = 1024 * 1024 * 1024


class HeapModel:
    """Fixed-capacity heap with leak attribution.

    Transient per-request allocations are assumed to be reclaimed by the
    garbage collector and are not tracked individually; what matters to the
    experiments is the monotone growth of *unreclaimable* (leaked) memory
    and which reboot level releases it.
    """

    def __init__(self, capacity=DEFAULT_CAPACITY, baseline=None):
        if baseline is None:
            # JBoss + deployed application resident set; leaves ~87% of a
            # 1 GB heap available at steady state, matching Figure 6's
            # starting point of roughly 900 MB available.
            baseline = int(capacity * 0.13)
        if baseline > capacity:
            raise ValueError("baseline footprint exceeds heap capacity")
        self.capacity = capacity
        self.baseline = baseline
        self._leaked = {}

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def leaked_total(self):
        return sum(self._leaked.values())

    @property
    def used(self):
        return self.baseline + self.leaked_total

    @property
    def available(self):
        return self.capacity - self.used

    def leaked_by(self, owner):
        """Bytes currently leaked by ``owner``."""
        return self._leaked.get(owner, 0)

    def owners_by_leak(self):
        """Owners sorted descending by leaked bytes (rejuvenation order)."""
        return sorted(self._leaked, key=self._leaked.get, reverse=True)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def leak(self, owner, nbytes):
        """Record ``nbytes`` leaked by ``owner``.

        Raises :class:`OutOfMemoryError_` if the heap is already exhausted;
        the allocation itself is what would throw in a real JVM.  The leak
        is recorded either way (the failed allocation attempt does not free
        anything).
        """
        if nbytes < 0:
            raise ValueError(f"cannot leak a negative amount: {nbytes}")
        exhausted = self.available <= 0
        self._leaked[owner] = self._leaked.get(owner, 0) + nbytes
        if exhausted:
            raise OutOfMemoryError_(f"heap exhausted while allocating for {owner!r}")

    def check_allocation(self, nbytes=0):
        """Raise :class:`OutOfMemoryError_` if ``nbytes`` cannot be served.

        Called on the request path: once leaks exhaust the heap, ordinary
        request processing starts failing with OOM errors.
        """
        if self.available - nbytes <= 0:
            raise OutOfMemoryError_(
                f"allocation of {nbytes} bytes failed "
                f"({self.available} of {self.capacity} available)"
            )

    def release_owner(self, owner):
        """Free everything leaked by ``owner``; returns the bytes freed.

        This is what a microreboot of a leaking component achieves: the
        component's object graph becomes garbage and the post-µRB collection
        reclaims it.
        """
        return self._leaked.pop(owner, 0)

    def release_application(self, component_names):
        """Free leaks of every listed component (whole-application restart)."""
        return sum(self.release_owner(name) for name in component_names)

    def release_all(self):
        """Free every leak including the server's own (JVM restart)."""
        freed = self.leaked_total
        self._leaked.clear()
        return freed

    def __repr__(self):
        return (
            f"<HeapModel {self.available // (1024 * 1024)} MB free of "
            f"{self.capacity // (1024 * 1024)} MB>"
        )
