"""Calibration constants for the simulated platform.

All values are in **seconds** and are calibrated so that a fault-free
single-node run reproduces the paper's steady-state numbers (Table 5:
~72 req/s and ~15 ms mean latency with FastS, ~28 ms with SSM, at 500
concurrent clients) and recovery experiments reproduce Table 3's
crash/reinit breakdown.

Component-specific crash/reinit times live in the deployment descriptors
(:mod:`repro.ebid.descriptors` carries the paper's Table 3 values); this
module holds everything that is platform-wide.
"""

from dataclasses import dataclass, field


def _default_jboss_services():
    """Init times for the JBoss-analogue services (paper §5.2).

    The paper reports that 56% of the 19 s JVM-restart time is spent
    initializing JBoss and its more than 70 services, calling out the
    transaction service (2 s), the embedded web server (1.8 s), and the
    control & management service (1.2 s).  The remainder here is spread
    over small services so the total service-init time is ~10.7 s.
    """
    services = [
        ("transaction-service", 2.0),
        ("embedded-web-server", 1.8),
        ("control-and-management", 1.2),
        ("naming-service", 0.35),
        ("deployer-service", 0.30),
        ("security-service", 0.25),
        ("connection-pool", 0.22),
        ("thread-pool", 0.15),
        ("classloading-service", 0.18),
        ("mail-service", 0.12),
        ("scheduler-service", 0.10),
        ("jmx-adaptor", 0.20),
    ]
    # 64 further small services, 0.06 s each, bring the count past 70 and
    # the total to ~10.75 s (56% of 19.08 s ≈ 10.7 s).
    services.extend((f"aux-service-{i:02d}", 0.06) for i in range(64))
    return services


@dataclass
class TimingModel:
    """Platform-wide timing calibration (seconds)."""

    #: Base CPU demand the web tier charges per request (connection
    #: handling, parsing, rendering), on top of per-bean demands.  Chosen
    #: so the *total* CPU per request averages ≈6 ms: a node then saturates
    #: near 160 req/s, normal load (500 clients ≈ 71 req/s) runs at
    #: comfortable utilization, and doubled load (§5.3) sits close enough
    #: to saturation that failing one node's traffic over to the others
    #: overloads them — the regime Figure 4 and Table 4 explore.
    request_cpu_time: float = 0.0053

    #: Latency of one database access (entity-bean load/store) as seen from
    #: the application tier: LAN round trip plus MySQL work.
    db_access_time: float = 0.0025

    #: Latency of one FastS session access (in-JVM, compiler-enforced
    #: barriers only — fast).
    fasts_access_time: float = 0.0004

    #: Latency of one SSM session access: marshalling, a network round trip
    #: to the state-store brick, unmarshalling.  Roughly 45% of requests
    #: touch session state (Table 1's lifecycle/update categories plus the
    #: logged-in commit paths), so this is calibrated to raise the *mean*
    #: request latency by ~12-13 ms when switching FastS→SSM (Table 5's
    #: 15 → 28 ms, a 70-90% increase).
    ssm_access_time: float = 0.018

    #: Static content service time (file cache hit in the web tier).
    static_content_time: float = 0.0015

    #: Extra CPU burned populating a node's session cache from SSM when a
    #: failed-over session first arrives (§5.3).
    ssm_cache_population_time: float = 0.008

    #: Quantum for the processor-sharing CPU approximation.
    cpu_quantum: float = 0.004

    #: JBoss-analogue service init schedule (name, seconds).
    jboss_services: list = field(default_factory=_default_jboss_services)

    #: Crash ("kill -9") cost for the JVM process — effectively immediate.
    jvm_crash_time: float = 0.001

    #: Operating-system reboot time (BIOS + kernel + services).  The paper
    #: does not report a figure; a small-cluster Linux box of the era took
    #: on the order of a minute.
    os_reboot_time: float = 65.0

    #: Time for the whole-application restart (Table 3: eBid restarts in
    #: 7.699 s total, less than the sum of per-component restarts because
    #: the deployer batches redeployment).
    app_restart_crash_time: float = 0.033
    app_restart_reinit_time: float = 7.666

    #: Application deploy time during a cold JVM start.  Slightly larger
    #: than the warm whole-app restart because the deployer also verifies
    #: EJB interfaces and builds containers from scratch; sized so the total
    #: JVM restart is the paper's 19.083 s (56% services / 44% app deploy).
    jvm_app_deploy_time: float = 8.37

    #: Garbage-collector pause after a µRB (§8: Java offers no constant-time
    #: resource reclamation; the prototype calls the collector after a µRB).
    gc_pause_after_urb: float = 0.020

    #: Database process crash-recovery time (WAL replay; "MySQL is
    #: crash-safe and recovers fast for our datasets").
    db_recovery_time: float = 2.0

    #: Multiplier applied to all service times to model jitter; sampled as
    #: uniform(1-jitter, 1+jitter) per operation.
    jitter: float = 0.15

    def jboss_services_init_time(self):
        """Total init time of all platform services (~10.7 s)."""
        return sum(duration for _name, duration in self.jboss_services)

    def jvm_restart_time(self):
        """Total JVM restart time ≈ 19.08 s (Table 3, bottom row)."""
        return (
            self.jvm_crash_time
            + self.jboss_services_init_time()
            + self.jvm_app_deploy_time
        )

    def sample(self, rng, base):
        """Apply multiplicative jitter to a base service time."""
        if self.jitter <= 0:
            return base
        return base * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
