"""Transaction manager.

State segregation (§2) requires that persistent-state updates be
transactional: "If an EJB is involved in any transactions at the time of a
microreboot, they are all automatically aborted by the container and rolled
back by the database" (§3.3).  The manager tracks which components each
transaction has touched so the microreboot machinery can abort exactly the
affected transactions.

Resources (the database, in this reproduction) enlist in a transaction and
implement the two-call protocol ``commit_transaction(tx_id)`` /
``rollback_transaction(tx_id)``.
"""

import enum
from itertools import count

from repro.appserver.errors import TransactionError


class TxState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ROLLED_BACK = "rolled-back"


class Transaction:
    """One unit of work spanning component calls and resource updates."""

    _ids = count(1)

    def __init__(self, owner):
        self.tx_id = next(Transaction._ids)
        self.owner = owner
        self.state = TxState.ACTIVE
        self.components = set()  # components whose code ran inside this tx
        self.resources = []  # enlisted resources, in enlistment order

    @property
    def is_active(self):
        return self.state is TxState.ACTIVE

    def enlist(self, resource):
        """Register a resource the first time the transaction touches it."""
        if not self.is_active:
            raise TransactionError(f"tx {self.tx_id} is {self.state.value}")
        if resource not in self.resources:
            self.resources.append(resource)

    def touch(self, component_name):
        """Record that ``component_name``'s code ran inside this tx."""
        self.components.add(component_name)

    def __repr__(self):
        return f"<Transaction #{self.tx_id} {self.state.value}>"


class TransactionManager:
    """Begins, commits, rolls back, and force-aborts transactions."""

    def __init__(self):
        self._active = {}
        self.committed_count = 0
        self.rolled_back_count = 0

    @property
    def active_transactions(self):
        return list(self._active.values())

    def begin(self, owner):
        tx = Transaction(owner)
        self._active[tx.tx_id] = tx
        return tx

    def commit(self, tx):
        """Commit: flush every enlisted resource, then retire the tx."""
        if not tx.is_active:
            raise TransactionError(f"commit of {tx!r}")
        for resource in tx.resources:
            resource.commit_transaction(tx.tx_id)
        tx.state = TxState.COMMITTED
        del self._active[tx.tx_id]
        self.committed_count += 1

    def rollback(self, tx):
        """Roll back every enlisted resource, then retire the tx."""
        if not tx.is_active:
            raise TransactionError(f"rollback of {tx!r}")
        for resource in tx.resources:
            resource.rollback_transaction(tx.tx_id)
        tx.state = TxState.ROLLED_BACK
        del self._active[tx.tx_id]
        self.rolled_back_count += 1

    def abort_involving(self, component_names):
        """Roll back every active tx that touched any listed component.

        Called by the microreboot machinery before destroying instances.
        Returns the number of transactions aborted.
        """
        names = set(component_names)
        doomed = [tx for tx in self._active.values() if tx.components & names]
        for tx in doomed:
            self.rollback(tx)
        return len(doomed)

    def abort_all(self):
        """Roll back every active transaction (whole-app / JVM restart)."""
        doomed = list(self._active.values())
        for tx in doomed:
            self.rollback(tx)
        return len(doomed)
