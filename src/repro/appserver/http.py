"""HTTP request/response types for the simulated web tier.

Responses carry both a rendered ``body`` (scanned for failure keywords by
the simple detector, §4) and a canonical ``payload`` mapping (compared
field-by-field against a known-good instance by the comparison detector,
ignoring volatile fields to account for timing nondeterminism).
"""

import enum
from dataclasses import dataclass, field
from itertools import count


class HttpStatus(enum.IntEnum):
    OK = 200
    NOT_FOUND = 404
    INTERNAL_SERVER_ERROR = 500
    SERVICE_UNAVAILABLE = 503


_request_ids = count(1)


@dataclass
class HttpRequest:
    """One user operation's HTTP request.

    Attributes:
        url: path, e.g. ``/ebid/ViewItem``; the recovery manager's diagnosis
            maps URL prefixes to servlet→EJB call paths.
        operation: the logical end-user operation name (ViewItem, MakeBid,
            ...), used for workload accounting.
        params: operation parameters (item id, bid amount, ...).
        cookie: the HTTP session cookie, or None before login.
        idempotent: whether the operation can be safely re-issued; drives
            the transparent call-retry machinery of §6.2.
        client_id: issuing emulated client (for metrics attribution).
        trace: the :class:`~repro.telemetry.spans.TraceContext` attached at
            admission (LB or server), or None when spans are disabled.  The
            issuing client finishes it with the detector verdict.
    """

    url: str
    operation: str
    params: dict = field(default_factory=dict)
    cookie: str = None
    idempotent: bool = True
    client_id: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))
    trace: object = None


@dataclass
class HttpResponse:
    """The reply to one request."""

    status: HttpStatus
    body: str = ""
    payload: dict = field(default_factory=dict)
    retry_after: float = None  # seconds, for 503 responses (§6.2)
    #: True when the client never got an HTTP reply at all (connection
    #: refused/reset); the simple detector treats this as a network-level
    #: error, its strongest failure signal.
    network_error: bool = False

    #: Payload keys excluded from known-good comparison (timing-dependent).
    VOLATILE_KEYS = ("elapsed", "timestamp", "served_by", "session_age")

    @property
    def is_error_status(self):
        return int(self.status) >= 400

    def comparable_payload(self):
        """Payload with volatile fields stripped, for the §4 comparator."""
        return {
            key: value
            for key, value in self.payload.items()
            if key not in self.VOLATILE_KEYS
        }


def error_response(status, message):
    """A failure response whose body carries detectable keywords."""
    return HttpResponse(status=status, body=f"<html>error: {message}</html>")


def exception_page(message):
    """A 200 page produced by *incorrect* exception handling (§5.1).

    Some eBid servlets swallow application exceptions and render a polite
    page; the simple detector only notices these through its keyword scan.
    """
    return HttpResponse(
        status=HttpStatus.OK,
        body=f"<html>We are sorry, an exception occurred: {message}</html>",
    )
