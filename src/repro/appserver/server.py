"""The application server: deployment, request handling, process lifecycle.

This is the JBoss analogue.  One :class:`ApplicationServer` is one JVM
process on one middle-tier node: it hosts the naming service, transaction
manager, classloaders, component containers, a heap, and a CPU.  Requests
arrive through :meth:`handle_request`, are carried by shepherd-thread
processes through the WAR and the EJBs, and are bounded by a request lease
(the TTL of §2, "Leases") that purges stuck requests.
"""

import enum
from itertools import count

from repro.appserver.classloader import ClassLoaderRegistry
from repro.appserver.component import InvocationContext
from repro.appserver.container import Container, ContainerState
from repro.appserver.cpu import ProcessorSharingCpu
from repro.appserver.descriptors import ComponentKind
from repro.appserver.errors import (
    AppServerError,
    ComponentUnavailableError,
    ServerDownError,
)
from repro.appserver.http import HttpResponse, HttpStatus, error_response
from repro.appserver.memory import HeapModel
from repro.appserver.naming import NamingService
from repro.appserver.timing import TimingModel
from repro.appserver.transactions import TransactionManager
from repro.sim.errors import Interrupt


class ServerState(enum.Enum):
    STOPPED = "stopped"
    STARTING = "starting"
    RUNNING = "running"


class ConnectionPool:
    """Database connection pool — server metadata a µRB does *not* scrub.

    §7: "our implementation of µRB does not scrub data maintained by the
    application server on behalf of the application, such as the database
    connection pool and various caches"; low-level faults (bit flips) that
    corrupt it therefore require a JVM restart.
    """

    def __init__(self, size=20):
        self.size = size
        self.healthy = True
        self.checkouts = 0

    def checkout(self):
        if not self.healthy:
            raise AppServerError("database connection pool is corrupted")
        self.checkouts += 1

    def reset(self):
        self.healthy = True
        self.checkouts = 0


def network_error_response(reason):
    """What a client sees when the server process is not accepting."""
    return HttpResponse(
        status=HttpStatus.INTERNAL_SERVER_ERROR,
        body=f"network error: {reason}",
        network_error=True,
    )


class ApplicationServer:
    """One JVM running the microreboot-enabled application server."""

    _ids = count(1)

    def __init__(self, kernel, rng, timing=None, heap=None, cpu=None, name=None):
        self.kernel = kernel
        self.rng = rng
        self.timing = timing or TimingModel()
        self.name = name or f"server-{next(ApplicationServer._ids)}"
        self.heap = heap or HeapModel()
        self.cpu = cpu or ProcessorSharingCpu(
            kernel, quantum=self.timing.cpu_quantum
        )
        self.naming = NamingService()
        self.transactions = TransactionManager()
        self.classloaders = ClassLoaderRegistry()
        self.connection_pool = ConnectionPool()
        self.containers = {}
        self.state = ServerState.STOPPED

        #: External resources, wired by the assembly code.
        self.database = None
        self.session_store = None
        self.static_store = None

        #: Deployed applications: name -> list of descriptors, in deploy order.
        self.applications = {}
        self.web_component_name = None

        #: Transparent call-retry machinery of §6.2 (off by default, as in
        #: the paper's baseline experiments).
        self.retry_enabled = False

        #: Request lease: stuck requests are purged after this many seconds.
        self.request_lease_ttl = 12.0

        #: Session-cookie serial: per-server (the name makes the cookie
        #: cluster-unique), monotone across microreboots, and — unlike a
        #: process-global counter — deterministic run to run, so session
        #: placement on a shard ring is a pure function of the seed.
        self.session_serial = 0

        #: Server-level fault hook (bad syscall returns): when set, request
        #: admission fails with the given exception message.
        self.accept_fault = None

        #: Span layer (wired by the rig): admitted requests get a
        #: TraceContext attached here, tagged with this server's name.
        self.span_collector = None

        # Statistics.
        self.requests_accepted = 0
        self.requests_completed = 0
        self.responses_by_status = {}

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def deploy(self, app_name, descriptors):
        """Register an application's components (containers are built now,
        initialized by :meth:`boot`)."""
        if app_name in self.applications:
            raise AppServerError(f"application {app_name!r} already deployed")
        self.applications[app_name] = list(descriptors)
        for descriptor in descriptors:
            if descriptor.name in self.containers:
                raise AppServerError(f"component {descriptor.name!r} already exists")
            loader = self.classloaders.loader_for(descriptor.name)
            self.containers[descriptor.name] = Container(self, descriptor, loader)
            if descriptor.kind is ComponentKind.WEB:
                self.web_component_name = descriptor.name
        # Reboot-coupled metadata spans containers symmetrically (§3.2):
        # each container learns its group peers so it can detect a stale
        # cross-container reference if a peer is ever recycled without it.
        names = {d.name for d in descriptors}
        for descriptor in descriptors:
            for ref in descriptor.group_references:
                if ref not in names:
                    raise AppServerError(
                        f"{descriptor.name!r} group-references unknown "
                        f"component {ref!r}"
                    )
                self.containers[descriptor.name].group_peers.add(ref)
                self.containers[ref].group_peers.add(descriptor.name)

    def descriptors_for(self, app_name):
        return list(self.applications[app_name])

    def component_names(self, app_name=None):
        """Deployed component names (optionally of one application)."""
        if app_name is None:
            return list(self.containers)
        return [d.name for d in self.applications[app_name]]

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------
    def boot(self, cold=True):
        """Generator: start the JVM/JBoss process and deploy applications.

        ``cold=True`` charges the full service-initialization plus
        application-deployment time (Table 3's 19.083 s JVM restart);
        ``cold=False`` is used by tests to build a running system without
        simulating start-up time.
        """
        if self.state is not ServerState.STOPPED:
            raise AppServerError(f"boot() while {self.state.value}")
        self.state = ServerState.STARTING
        if cold:
            yield self.kernel.timeout(self.timing.jboss_services_init_time())
            yield self.kernel.timeout(self.timing.jvm_app_deploy_time)
        for descriptors in self.applications.values():
            for descriptor in descriptors:
                container = self.containers[descriptor.name]
                container.classloader = self.classloaders.loader_for(descriptor.name)
                container.initialize()
                self.naming.bind(descriptor.name, descriptor.name)
        self.connection_pool.reset()
        self.state = ServerState.RUNNING

    def kill(self):
        """``kill -9`` the JVM: immediate, destructive, loses in-JVM state.

        In-flight shepherd threads die; the database rolls back their
        transactions (its TCP sessions terminate); the heap, classloaders
        (and thus static variables), connection pool, and any session store
        living inside the JVM are lost.
        """
        self.state = ServerState.STOPPED
        for container in self.containers.values():
            container.destroy(cause="jvm-kill")
            container.state = ContainerState.STOPPED
        self.transactions.abort_all()
        for name in list(self.naming.bound_names()):
            self.naming.unbind(name)
        self.heap.release_all()
        self.classloaders.discard_all()
        self.connection_pool.reset()
        self.accept_fault = None
        if self.session_store is not None:
            self.session_store.notify_jvm_exit(self)

    def restart_jvm(self):
        """Generator: the paper's coarsest in-node recovery action."""
        self.kill()
        yield self.kernel.timeout(self.timing.jvm_crash_time)
        yield from self.boot(cold=True)

    def assert_running(self):
        if self.state is not ServerState.RUNNING:
            raise ServerDownError(f"{self.name} is {self.state.value}")

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def handle_request(self, request):
        """Accept a request; returns an event triggering with the response.

        The event always *succeeds* — failures are encoded in the response
        (HTTP status, error body, or a network-error marker), because that
        is what the paper's client-side detectors observe.
        """
        done = self.kernel.event()
        if self.state is not ServerState.RUNNING:
            return done.succeed(network_error_response("connection refused"))
        if self.accept_fault is not None:
            return done.succeed(network_error_response(self.accept_fault))
        self.requests_accepted += 1
        if self.span_collector is not None:
            self.span_collector.attach(request, node=self.name)
        trace = self.kernel.trace
        if trace.enabled:  # hoisted: skip kwargs-building on the hot path
            trace.publish(
                "server.request.start",
                server=self.name,
                request_id=request.request_id,
                operation=request.operation,
            )
        self.kernel.process(
            self._request_lifecycle(request, done),
            name=f"lifecycle-{request.request_id}",
        )
        return done

    def _request_lifecycle(self, request, done):
        """Supervise one request: spawn the shepherd, enforce the lease."""
        ctx = InvocationContext(self, request)
        shepherd = self.kernel.process(
            self._serve(ctx, request), name=f"shepherd-{request.request_id}"
        )
        ctx.shepherd_process = shepherd
        lease = self.kernel.timeout(self.request_lease_ttl)
        yield self.kernel.any_of([shepherd, lease])
        if not shepherd.triggered:
            # The lease expired with the request still in flight: purge it
            # (§2, "stuck requests can be automatically purged").
            shepherd.interrupt(cause="request-lease-expired")
        try:
            response = yield shepherd
        except BaseException:  # noqa: BLE001 - shepherd died uncleanly
            response = network_error_response("connection reset (thread died)")
        self.requests_completed += 1
        key = "network" if getattr(response, "network_error", False) else int(response.status)
        self.responses_by_status[key] = self.responses_by_status.get(key, 0) + 1
        trace = self.kernel.trace
        if trace.enabled:
            trace.publish(
                "server.request.end",
                server=self.name,
                request_id=request.request_id,
                operation=request.operation,
                status=key,
            )
        done.succeed(response)

    def _serve(self, ctx, request):
        """Generator: the shepherd thread.  Never raises — every outcome is
        turned into an :class:`HttpResponse` for the detectors to inspect."""
        try:
            response = yield from ctx.call(
                self.web_component_name, "handle", request
            )
            if not isinstance(response, HttpResponse):
                response = error_response(
                    HttpStatus.INTERNAL_SERVER_ERROR,
                    f"servlet returned {type(response).__name__}",
                )
        except Interrupt as interrupt:
            # The thread was killed (microreboot, JVM kill, or lease
            # expiry); the client observes a dropped connection.
            response = network_error_response(
                f"connection reset ({interrupt.cause})"
            )
        except ComponentUnavailableError as unavailable:
            if self.retry_enabled and request.idempotent and unavailable.retry_after:
                response = HttpResponse(
                    status=HttpStatus.SERVICE_UNAVAILABLE,
                    body="retry later",
                    retry_after=unavailable.retry_after,
                )
            else:
                response = error_response(
                    HttpStatus.INTERNAL_SERVER_ERROR,
                    f"exception: {unavailable}",
                )
        except AppServerError as exc:
            response = error_response(
                HttpStatus.INTERNAL_SERVER_ERROR, f"exception: {exc}"
            )
        except Exception as exc:  # noqa: BLE001 - bean bugs become 500s
            response = error_response(
                HttpStatus.INTERNAL_SERVER_ERROR,
                f"unhandled exception: {type(exc).__name__}: {exc}",
            )
        return response

    def __repr__(self):
        return f"<ApplicationServer {self.name} {self.state.value}>"
