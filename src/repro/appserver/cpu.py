"""Processor-sharing CPU model for a middle-tier node.

Response-time dynamics drive several of the paper's results (Figure 4,
Table 4: requests exceeding 8 s during failover under doubled load), so the
CPU cannot be a fixed per-request delay — it must slow down under load and
recover as the backlog drains.

We approximate processor sharing: a job needing ``t`` seconds of CPU is
served in quanta, and each quantum is stretched by the number of jobs
currently sharing the processor.  This preserves the closed-loop behaviour
that matters (saturation when offered load exceeds capacity, graceful
slowdown otherwise) at a few simulator events per request.

"Hogs" model runaway computations (the injected infinite loops of §5.1): a
hog occupies the processor indefinitely, inflating everyone else's service
times until the hog's thread is killed by a microreboot.
"""

from repro.sim.errors import SimulationError


class ProcessorSharingCpu:
    """Quantum-based processor-sharing approximation."""

    def __init__(self, kernel, cores=1, quantum=0.004):
        if cores < 1:
            raise SimulationError(f"cores must be >= 1, got {cores}")
        if quantum <= 0:
            raise SimulationError(f"quantum must be positive, got {quantum}")
        self.kernel = kernel
        self.cores = cores
        self.quantum = quantum
        self._active = 0
        self._hogs = 0

    @property
    def active_jobs(self):
        """Jobs currently consuming CPU, including hogs."""
        return self._active + self._hogs

    @property
    def load(self):
        """Instantaneous load: jobs per core."""
        return self.active_jobs / self.cores

    def slowdown(self):
        """Current stretch factor for a quantum of service."""
        return max(1.0, self.active_jobs / self.cores)

    def consume(self, demand):
        """Generator: occupy the CPU for ``demand`` seconds of service.

        Yield from this inside a simulated process.  The elapsed simulated
        time is ``demand`` when the processor is uncontended and stretches
        proportionally to the number of concurrent jobs otherwise.  The
        accounting is interrupt-safe: a killed shepherd thread stops
        contributing to the load.
        """
        if demand < 0:
            raise SimulationError(f"negative CPU demand: {demand}")
        self._active += 1
        try:
            remaining = demand
            while remaining > 0:
                slice_ = min(remaining, self.quantum)
                yield self.kernel.timeout(slice_ * self.slowdown())
                remaining -= slice_
        finally:
            self._active -= 1

    # ------------------------------------------------------------------
    # Runaway computations
    # ------------------------------------------------------------------
    def add_hog(self):
        """Register a thread stuck in an infinite loop."""
        self._hogs += 1

    def remove_hog(self):
        """Unregister a runaway thread (its shepherd was killed)."""
        if self._hogs <= 0:
            raise SimulationError("remove_hog() with no registered hogs")
        self._hogs -= 1
