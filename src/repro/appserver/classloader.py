"""Per-component classloaders.

JBoss gives each EJB its own classloader for sandboxing; the paper's
microreboot deliberately *preserves* the classloader (§3.2) so internal
references to the component need no update.  The observable consequence we
model: static variables survive a microreboot (but not an application or JVM
restart).  J2EE discourages mutable statics — eBid's beans do not use them —
but the platform supports them so tests can demonstrate exactly why they are
dangerous in a microrebootable system (§7, "impact on shared state").
"""

from itertools import count

_loader_ids = count(1)


class ClassLoader:
    """Identity scope for one component's classes.

    Attributes:
        component: name of the component this loader serves.
        loader_id: unique id; a class' identity in Java is (name, loader),
            so replacing the loader would invalidate every reference to the
            component's classes.
        statics: the static-variable table of the component's classes.
            Survives microreboots (the loader is kept); cleared only when
            the loader itself is discarded.
    """

    def __init__(self, component):
        self.component = component
        self.loader_id = next(_loader_ids)
        self.statics = {}

    def class_identity(self, class_name):
        """The (class, loader) identity pair."""
        return (class_name, self.loader_id)

    def __repr__(self):
        return f"<ClassLoader #{self.loader_id} for {self.component!r}>"


class ClassLoaderRegistry:
    """The server's set of live classloaders."""

    def __init__(self):
        self._loaders = {}

    def loader_for(self, component):
        """Return the live loader for ``component``, creating one if needed.

        A microreboot calls this and gets the *same* loader back; a
        whole-application or JVM restart calls :meth:`discard` first and a
        fresh loader (new identity, empty statics) is created.
        """
        loader = self._loaders.get(component)
        if loader is None:
            loader = ClassLoader(component)
            self._loaders[component] = loader
        return loader

    def discard(self, component):
        """Drop the loader (application restart / JVM restart semantics)."""
        self._loaders.pop(component, None)

    def discard_all(self):
        self._loaders.clear()
