"""Component model: beans, the web component, and the invocation context.

Application code (eBid) is written as component classes whose business
methods are *generators*: they ``yield`` simulation events (CPU consumption,
store accesses) and call other components through the
:class:`InvocationContext`, never through direct references (§2,
"Decoupling").  A single shepherd thread carries a request through the WAR
and every EJB it touches, exactly as in J2EE where "a single Java thread
shepherds a user request through multiple EJBs" (§3.1).
"""

from repro.appserver.descriptors import ComponentKind
from repro.appserver.http import HttpStatus, error_response
from repro.appserver.errors import (
    ApplicationException,
    ComponentUnavailableError,
    NamingError,
)
from repro.appserver.naming import Sentinel


class InvocationContext:
    """Per-request state threaded through every component call.

    Attributes:
        server: the :class:`~repro.appserver.server.ApplicationServer`.
        request: the :class:`~repro.appserver.http.HttpRequest` being served
            (None for internally-generated work).
        transaction: the active :class:`~repro.appserver.transactions
            .Transaction`, or None.
        call_path: names of the components this request has entered, in
            order — the ground truth against which the recovery manager's
            static URL→path map is validated in tests.
        shepherd_process: the simulated process carrying the request; the
            microreboot machinery interrupts it to kill the thread.
        nontx_write_count: auto-committed (non-transactional) persistent
            writes performed by the current invocation frame; the container
            uses it for its post-invocation demarcation check.
        trace: the request's :class:`~repro.telemetry.spans.TraceContext`
            (None when spans are disabled); containers bracket invocations
            with spans against it.
        current_span: the innermost open span, i.e. the parent for the next
            component call's span.
    """

    def __init__(self, server, request=None):
        self.server = server
        self.request = request
        self.transaction = None
        self.call_path = []
        self.shepherd_process = None
        self.nontx_write_count = 0
        self.trace = getattr(request, "trace", None) if request is not None else None
        self.current_span = None

    # ------------------------------------------------------------------
    # Calling other components
    # ------------------------------------------------------------------
    def call(self, name, method, *args, **kwargs):
        """Invoke ``method`` on component ``name`` through the platform.

        This is a generator; business methods use ``result = yield from
        ctx.call(...)``.  The call is mediated by the naming service and the
        target's container, which applies the interceptor chain (state
        check, transaction demarcation, fault hooks).

        Raises:
            NamingError: unbound or null-corrupted JNDI entry.
            ComponentUnavailableError: the target is microrebooting (carries
                the sentinel's retry-after estimate).
            InvocationError: the resolved container does not implement
                ``method`` (a *wrong* JNDI entry sends the call to the wrong
                container).
        """
        binding = self.server.naming.lookup(name)
        if isinstance(binding, Sentinel):
            raise ComponentUnavailableError(name, retry_after=binding.retry_after)
        container = self.server.containers.get(binding)
        if container is None:
            raise NamingError(name, f"entry points at unknown container {binding!r}")
        result = yield from container.invoke(self, method, args, kwargs)
        return result

    # ------------------------------------------------------------------
    # Resource consumption
    # ------------------------------------------------------------------
    def consume(self, seconds):
        """Generator: burn ``seconds`` of node CPU (with jitter, shared)."""
        timing = self.server.timing
        demand = timing.sample(self.server.rng, seconds)
        yield from self.server.cpu.consume(demand)

    def io_delay(self, seconds):
        """Generator: wait out an I/O latency (network/disk, no CPU held)."""
        delay = self.server.timing.sample(self.server.rng, seconds)
        yield self.server.kernel.timeout(delay)


class Component:
    """Base class for everything deployable.

    Subclasses define business methods as generators taking ``(self, ctx,
    ...)``.  The container instantiates components via the descriptor's
    factory, then calls :meth:`setup`; :meth:`on_start` runs once per
    (re)initialization.
    """

    KIND = None  # subclasses set a ComponentKind

    def __init__(self):
        self.container = None
        self.server = None
        self.failed = False  # set when an invocation on this instance blew up

    def setup(self, container):
        """Wire the instance to its container; called before on_start."""
        self.container = container
        self.server = container.server

    @property
    def name(self):
        return self.container.name if self.container else type(self).__name__

    @property
    def statics(self):
        """The component class' static-variable table.

        Lives on the classloader, so it survives microreboots (§3.2).
        eBid's beans do not use mutable statics; this exists so tests can
        demonstrate the hazard.
        """
        return self.container.classloader.statics

    def on_start(self):
        """Hook run when the component (re)initializes.  May be overridden."""

    def on_stop(self):
        """Hook run when the component is stopped/destroyed."""

    def app_error(self, message):
        """Build an ApplicationException attributed to this component."""
        return ApplicationException(self.name, message)


class EntityBean(Component):
    """A persistent application object mapped to a database table.

    Uses container-managed persistence (§3.3): the bean never writes SQL;
    the helpers below charge the database access latency, enlist the active
    transaction, and go through the server's database reference.

    Persistence follows the *lenient* J2EE container behaviour: with an
    active transaction, writes are undo-logged and atomic; without one, each
    write auto-commits individually.  The container's post-invocation check
    flags methods that were declared transactional but completed with
    auto-committed writes — that mismatch is how a corrupted ("wrong")
    transaction method map manifests as both a user-visible failure and
    persistent partial state needing manual repair (Table 2's ``≈``).
    """

    KIND = ComponentKind.ENTITY

    @property
    def table(self):
        return self.container.descriptor.table

    def _db(self):
        # Every persistence operation checks a connection out of the
        # server's pool — metadata that microreboots do not scrub, so a
        # low-level fault corrupting the pool fails every entity access
        # until the JVM restarts (§7, Table 2's bit-flip rows).
        self.server.connection_pool.checkout()
        database = self.server.database
        if database is None:
            raise self.app_error("no database configured")
        return database

    def _charge(self, ctx):
        yield from ctx.io_delay(self.server.timing.db_access_time)

    def _tx_id(self, ctx):
        """Enlist and return the current tx id, or None for auto-commit."""
        tx = ctx.transaction
        if tx is None:
            ctx.nontx_write_count += 1
            return None
        tx.enlist(self._db())
        return tx.tx_id

    # -- reads ----------------------------------------------------------
    def ejb_load(self, ctx, pk):
        """Generator: load one row by primary key (None if absent)."""
        yield from self._charge(ctx)
        return self._db().read(self.table, pk)

    def ejb_find(self, ctx, **equals):
        """Generator: rows whose columns equal the given values."""
        yield from self._charge(ctx)
        return self._db().select(self.table, **equals)

    def ejb_count(self, ctx, **equals):
        yield from self._charge(ctx)
        return len(self._db().select(self.table, **equals))

    # -- writes ---------------------------------------------------------
    def ejb_create(self, ctx, row):
        """Generator: insert a row (primary key must be present)."""
        yield from self._charge(ctx)
        self._db().insert(self.table, row, tx_id=self._tx_id(ctx))
        return row

    def ejb_store(self, ctx, pk, **fields):
        """Generator: update columns of an existing row."""
        yield from self._charge(ctx)
        self._db().update(self.table, pk, fields, tx_id=self._tx_id(ctx))

    def ejb_remove(self, ctx, pk):
        """Generator: delete a row."""
        yield from self._charge(ctx)
        self._db().delete(self.table, pk, tx_id=self._tx_id(ctx))


class StatelessSessionBean(Component):
    """A higher-level operation over entity beans (§3.3).

    Holds no conversational state; any instance can serve any call.  The
    container discards an instance whose invocation raised — which is why
    corrupted instance attributes are "naturally expunged after the first
    call fails" (Table 2).
    """

    KIND = ComponentKind.STATELESS_SESSION


class WebComponent(Component):
    """The WAR: servlets that drive EJBs and render responses.

    Subclasses register servlets by URL prefix.  The WAR owns a small
    rendered-fragment cache (browse pages are cache-friendly); the cache is
    discarded on WAR microreboot, which is why a wrong value computed by a
    faulty bean can outlive that bean's own µRB until the WAR is also
    recycled (Table 2, "corrupt session EJB attributes — wrong").
    """

    KIND = ComponentKind.WEB

    def __init__(self):
        super().__init__()
        self._servlets = {}
        self.fragment_cache = {}

    def register_servlet(self, url_prefix, handler):
        """Map a URL prefix to a generator method ``handler(ctx, request)``."""
        self._servlets[url_prefix] = handler

    def handle(self, ctx, request):
        """Generator: the WAR's entry point — route to a servlet.

        The server invokes this through the normal container path, so a WAR
        microreboot makes requests fail (or retry) exactly like EJB calls.
        Charges the web tier's base CPU demand (connection handling,
        parsing, rendering) on top of whatever the servlet and beans burn.
        """
        yield from ctx.consume(self.server.timing.request_cpu_time)
        servlet = self.servlet_for(request.url)
        if servlet is None:
            return error_response(HttpStatus.NOT_FOUND, f"no servlet for {request.url}")
        response = yield from servlet(ctx, request)
        return response

    def servlet_for(self, url):
        """Longest-prefix match of ``url`` against registered servlets."""
        best = None
        for prefix in self._servlets:
            if url.startswith(prefix) and (best is None or len(prefix) > len(best)):
                best = prefix
        return self._servlets.get(best)

    def cache_get(self, key):
        return self.fragment_cache.get(key)

    def cache_put(self, key, value):
        self.fragment_cache[key] = value

    def on_stop(self):
        self.fragment_cache.clear()
