"""The naming service (JNDI analogue).

Components never hold direct references to each other; they look each other
up by name through this service (§3.3, "Isolation and decoupling").  That
indirection is what makes microreboots possible: the µRB machinery rebinds
the name while the component is recycled, and — for the call-retry scheme of
§6.2 — binds a *sentinel* carrying the estimated recovery time so callers
can answer ``503 Retry-After`` instead of failing.

The JNDI repository is also one of the volatile-metadata fault-injection
targets (Table 2): entries can be corrupted to ``None``, to a dangling
container id, or to the wrong component's container.
"""

from dataclasses import dataclass

from repro.appserver.errors import NamingError


@dataclass
class Sentinel:
    """Placeholder bound in place of a microrebooting component's name."""

    component: str
    retry_after: float  # estimated seconds until the component is back


class NamingService:
    """Name → container-id bindings with sentinel support."""

    def __init__(self):
        self._bindings = {}

    # ------------------------------------------------------------------
    # Normal operation
    # ------------------------------------------------------------------
    def bind(self, name, container_id):
        """Create or replace the binding for ``name``."""
        self._bindings[name] = container_id

    def unbind(self, name):
        """Remove the binding for ``name`` (component undeployed)."""
        self._bindings.pop(name, None)

    def lookup(self, name):
        """Resolve ``name`` to a container id.

        Raises :class:`NamingError` for unbound names and for entries
        corrupted to ``None`` (the corrupted entry elicits the same
        NullPointerException-style failure the paper injects).  A
        :class:`Sentinel` is returned as-is; callers decide whether to
        translate it into a retryable response.
        """
        if name not in self._bindings:
            raise NamingError(name, "not bound")
        target = self._bindings[name]
        if target is None:
            raise NamingError(name, "entry is null (corrupted)")
        return target

    def is_bound(self, name):
        return name in self._bindings

    def bound_names(self):
        return list(self._bindings)

    # ------------------------------------------------------------------
    # Microreboot support
    # ------------------------------------------------------------------
    def bind_sentinel(self, name, retry_after):
        """Bind a sentinel while ``name``'s component microreboots."""
        self._bindings[name] = Sentinel(name, retry_after)

    def is_sentinel(self, name):
        return isinstance(self._bindings.get(name), Sentinel)

    # ------------------------------------------------------------------
    # Fault-injection surface (used by repro.faults, never by recovery)
    # ------------------------------------------------------------------
    def _corrupt(self, name, value):
        """Overwrite a binding with an arbitrary (possibly bogus) value."""
        if name not in self._bindings:
            raise NamingError(name, "cannot corrupt an unbound name")
        self._bindings[name] = value

    def _raw(self, name):
        """The raw binding value, bypassing corruption checks (tests)."""
        return self._bindings.get(name)
