"""Parallel experiment campaigns: seeded trial specs fanned across cores."""

from repro.parallel.campaign import (
    CampaignError,
    TrialResult,
    TrialSpec,
    available_jobs,
    campaign_summary,
    derive_trial_seed,
    normalize_jobs,
    run_campaign,
)

__all__ = [
    "CampaignError",
    "TrialResult",
    "TrialSpec",
    "available_jobs",
    "campaign_summary",
    "derive_trial_seed",
    "normalize_jobs",
    "run_campaign",
]
