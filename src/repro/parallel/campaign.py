"""Fan independent, deterministically-seeded trials out across CPU cores.

Every evaluation artifact in this reproduction — the 26-row Table 2 fault
matrix, the figure sweeps, the pathdiag comparison — is a *campaign*: a
list of trials that share no state (each builds its own kernel and rig from
a seed), so they parallelize embarrassingly.  This module is the one
campaign runner they all go through:

* a trial is a :class:`TrialSpec` — a spawn-picklable ``"module:function"``
  task string, plain-data kwargs, a stable tag, and an explicit seed;
* :func:`run_campaign` executes the specs either in-process (``jobs=1``,
  the default) or on a ``spawn`` worker pool, and returns
  :class:`TrialResult` envelopes **in spec order** regardless of which
  worker finished first — so rendered experiment output is byte-identical
  between ``jobs=1`` and ``jobs=N``;
* determinism comes from the seeds alone: a worker re-derives every RNG
  stream from its spec's seed (see :mod:`repro.sim.rng`), never from
  process-global state, and the :func:`parent snapshot
  <repro.parallel.worker.worker_snapshot>` (telemetry defaults plus the
  dataset snapshot cache) is re-applied per worker;
* dataset builds amortize across trials: campaigns that share one root
  seed (e.g. the 26 Table 2 rows) regenerate identical synthetic
  datasets, so the first trial is *primed* in the parent process and the
  resulting snapshot rides the pool initializer into every worker;
* if the platform cannot run a worker pool at all (no ``sem_open``,
  sandboxed ``fork``/``spawn``, ...) the campaign silently degrades to the
  in-process path — slower, never wrong.
"""

import multiprocessing
import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.parallel import worker
from repro.sim.rng import derive_seed


class CampaignError(RuntimeError):
    """A trial failed; the message carries the worker-side traceback."""


@dataclass(frozen=True)
class TrialSpec:
    """One independent trial of a campaign.

    Attributes:
        task: worker entrypoint as ``"package.module:function"``; must be a
            module-level callable so a ``spawn``-ed worker can import it.
        kwargs: keyword arguments for the task; keep them plain data
            (numbers, strings, tuples) so they pickle under ``spawn``.
        tag: stable human-readable identifier (scenario label, arm name);
            used for seed derivation and error reporting.
        seed: RNG root seed passed to the task as ``seed=``; ``None`` for
            tasks that take no seed.
    """

    task: str
    kwargs: dict = field(default_factory=dict)
    tag: str = ""
    seed: int = None


@dataclass(frozen=True)
class TrialResult:
    """Structured envelope for one finished trial."""

    index: int  # position in the spec list (merge order)
    tag: str
    seed: int
    value: object  # the task's return value (None if the trial errored)
    elapsed_s: float  # wall-clock inside the worker
    pid: int  # worker process id (the parent's, for in-process runs)
    error: str = None  # "ExcType: message" if the trial raised
    traceback: str = None  # full worker-side traceback, for CampaignError

    @property
    def ok(self):
        return self.error is None


def derive_trial_seed(root_seed, tag):
    """A per-trial 64-bit seed from a campaign root seed and a trial tag.

    Uses the same SHA-256 derivation as the kernel's named RNG streams, so
    campaigns over many seeds stay deterministic and collision-free without
    the trial order mattering.
    """
    return derive_seed(root_seed, f"trial/{tag}")


def available_jobs():
    """How many worker processes this machine can usefully run."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def normalize_jobs(jobs):
    """Map the CLI contract (``0``/``None`` = all cores) to a worker count."""
    if jobs is None or jobs <= 0:
        return available_jobs()
    return int(jobs)


def run_campaign(specs, jobs=1, check=True):
    """Run every :class:`TrialSpec` and return results in spec order.

    ``jobs=1`` runs in-process (no pool, no pickling — the reference
    execution); ``jobs>1`` fans out over a ``spawn`` pool and falls back to
    in-process execution if the platform cannot start one.  ``jobs<=0``
    means "all available cores".

    With ``check=True`` (default) the first failed trial raises
    :class:`CampaignError` carrying the worker-side traceback; otherwise
    failed trials come back as envelopes with ``.ok == False``.
    """
    specs = list(specs)
    payloads = list(enumerate(specs))
    jobs = normalize_jobs(jobs)

    if jobs <= 1 or len(specs) <= 1:
        results = [worker.run_trial(payload) for payload in payloads]
    else:
        primed = []
        if _should_prime(specs):
            # Run the first trial in-process so the parent's dataset
            # snapshot cache is warm before the pool starts; the snapshot
            # then ships to every worker via the pool initializer and no
            # worker regenerates the shared dataset.  Trials are
            # order-independent (seed-derived), so this cannot change
            # results — only which process computed them.
            primed = [worker.run_trial(payloads[0])]
            payloads = payloads[1:]
        results = primed + _run_pool(payloads, min(jobs, len(payloads)))
        results.sort(key=lambda result: result.index)

    if check:
        for result in results:
            if not result.ok:
                raise CampaignError(
                    f"trial {result.index} ({result.tag or result.seed!r}) "
                    f"failed: {result.error}\n{result.traceback or ''}"
                )
    return results


def _should_prime(specs):
    """Prime the dataset snapshot iff the campaign can actually reuse it.

    Sharing pays only when every trial derives the same dataset — which,
    datasets being seed-pure, means every spec carries the same seed.  A
    sweep over distinct seeds would serialize one trial for no reuse, so
    it goes straight to the pool.  Already-cached snapshots (a previous
    campaign in this process) make priming redundant too.
    """
    from repro.ebid.app import dataset_snapshots_cached

    if dataset_snapshots_cached():
        return False
    seeds = {spec.seed for spec in specs}
    return len(seeds) == 1 and seeds != {None}


def _run_pool(payloads, jobs):
    """Execute payloads on a spawn pool; fall back in-process on platform
    errors (the pool itself failing, not a trial — trials never raise).

    ``ProcessPoolExecutor`` rather than ``multiprocessing.Pool``: when
    workers cannot even start (sandboxed semaphores, an un-reimportable
    ``__main__`` under spawn, ...) the executor raises ``BrokenExecutor``
    where a Pool would respawn crashing workers forever.
    """
    try:
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=context,
            initializer=worker.initialize,
            initargs=(worker.worker_snapshot(),),
        ) as pool:
            return list(pool.map(worker.run_trial, payloads))
    except (OSError, ImportError, PermissionError, ValueError, BrokenExecutor):
        # No spawn support on this platform: degrade to the sequential
        # reference path rather than failing the campaign.
        return [worker.run_trial(payload) for payload in payloads]


def campaign_summary(results):
    """Aggregate timing facts for benchmark output and logs."""
    elapsed = [result.elapsed_s for result in results]
    return {
        "trials": len(results),
        "errors": sum(1 for result in results if not result.ok),
        "workers": len({result.pid for result in results}),
        "total_trial_s": round(sum(elapsed), 4),
        "max_trial_s": round(max(elapsed), 4) if elapsed else 0.0,
    }
