"""A tiny self-contained campaign trial, for tests and documentation.

The determinism contract the parallel runner depends on is: *identical
seed in, identical trace out*, no matter which process runs the trial.
:func:`simulate_trial` exercises every kernel mechanism that contract
rests on — same-timestamp FIFO ordering, named RNG streams, event
succeed/fail wake-ups — in a fraction of a second, and returns a value
whose equality is a strong proxy for byte-identical execution: the full
ordered event log is folded into a SHA-256 digest.
"""

import hashlib

from repro.sim.kernel import Kernel
from repro.sim.resources import Queue
from repro.sim.rng import RngRegistry


def simulate_trial(seed=0, clients=10, requests=40):
    """Simulate a toy open-queue system; returns a deterministic digest.

    Each client sleeps a seeded think time, posts a job to a shared
    mailbox, and a single server process drains it with seeded service
    times.  The returned dict is plain data (spawn-picklable).
    """
    kernel = Kernel()
    rng = RngRegistry(seed)
    mailbox = Queue(kernel)
    log = []

    def client(client_id):
        stream_name = f"client-{client_id}"
        for n in range(requests):
            yield kernel.timeout(rng.exponential(stream_name, mean=2.0))
            mailbox.put((client_id, n))
            log.append(("put", round(kernel.now, 9), client_id, n))

    def server():
        for _ in range(clients * requests):
            client_id, n = yield mailbox.get()
            yield kernel.timeout(rng.exponential("service", mean=0.05))
            log.append(("done", round(kernel.now, 9), client_id, n))

    for client_id in range(clients):
        kernel.process(client(client_id), name=f"client-{client_id}")
    kernel.process(server(), name="server")
    kernel.run()

    digest = hashlib.sha256(repr(log).encode("utf-8")).hexdigest()
    return {
        "seed": seed,
        "events_processed": kernel.events_processed,
        "finished_at": round(kernel.now, 9),
        "log_digest": digest,
    }
