"""Spawn-safe worker entrypoints for parallel campaigns.

Everything in this module must be importable from a freshly ``spawn``-ed
interpreter: module-level functions only (so they pickle by reference), no
state inherited from the parent beyond what :func:`initialize` re-applies.

A trial task is addressed as ``"package.module:function"``; the worker
imports the module and calls the function with the spec's kwargs.  The
result travels back in a :class:`~repro.parallel.campaign.TrialResult`
envelope — exceptions included, as strings, so a crashed trial never kills
the pool.
"""

import importlib
import os
import time
import traceback


class TaskResolutionError(RuntimeError):
    """A trial task string did not resolve to a callable."""


def resolve_task(task):
    """Import and return the callable named by ``"module:function"``."""
    module_name, sep, attr = task.partition(":")
    if not sep or not module_name or not attr:
        raise TaskResolutionError(
            f"trial task must look like 'package.module:function', got {task!r}"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise TaskResolutionError(f"cannot import {module_name!r}: {exc}") from exc
    target = module
    for part in attr.split("."):
        try:
            target = getattr(target, part)
        except AttributeError:
            raise TaskResolutionError(
                f"{module_name!r} has no attribute {attr!r}"
            ) from None
    if not callable(target):
        raise TaskResolutionError(f"{task!r} resolved to non-callable {target!r}")
    return target


def worker_snapshot():
    """Picklable parent-process state re-applied in each spawned worker.

    ``spawn`` starts from a clean interpreter, so two kinds of parent state
    would silently vanish inside workers without this:

    * module-level telemetry defaults (e.g. ``repro run --trace``);
    * the dataset snapshot cache — shipping it means a worker's first
      trial restores the shared synthetic dataset instead of regenerating
      it (see :func:`repro.ebid.app.build_database`).
    """
    from repro.ebid.app import export_dataset_snapshots
    from repro.telemetry.spans import spans_enabled_by_default
    from repro.telemetry.trace import tracing_enabled_by_default

    return {
        "tracing": tracing_enabled_by_default(),
        "spans": spans_enabled_by_default(),
        "datasets": export_dataset_snapshots(),
    }


def initialize(snapshot):
    """Pool initializer: apply the parent's snapshot in this worker."""
    from repro.ebid.app import install_dataset_snapshots
    from repro.telemetry.spans import set_default_spans
    from repro.telemetry.trace import set_default_tracing

    set_default_tracing(snapshot.get("tracing", False))
    set_default_spans(snapshot.get("spans", False))
    install_dataset_snapshots(snapshot.get("datasets"))


def run_trial(payload):
    """Run one ``(index, TrialSpec)`` payload; always returns an envelope."""
    # Imported here (not at module top) so the circular campaign <-> worker
    # reference resolves the same way in parent and spawned child.
    from repro.parallel.campaign import TrialResult

    index, spec = payload
    started = time.perf_counter()
    value, error, tb = None, None, None
    try:
        fn = resolve_task(spec.task)
        kwargs = dict(spec.kwargs)
        if spec.seed is not None:
            kwargs["seed"] = spec.seed
        value = fn(**kwargs)
    except Exception as exc:  # noqa: BLE001 - envelope carries the failure
        error = f"{type(exc).__name__}: {exc}"
        tb = traceback.format_exc()
    return TrialResult(
        index=index,
        tag=spec.tag,
        seed=spec.seed,
        value=value,
        elapsed_s=time.perf_counter() - started,
        pid=os.getpid(),
        error=error,
        traceback=tb,
    )
