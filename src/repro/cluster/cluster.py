"""Cluster assembly: N eBid nodes, one database, one load balancer."""

from dataclasses import dataclass, field

from repro.appserver.timing import TimingModel
from repro.cluster.load_balancer import LoadBalancer
from repro.cluster.node import Node
from repro.ebid.app import build_database, build_ebid_system
from repro.ebid.descriptors import URL_PATH_MAP
from repro.ebid.schema import DatasetConfig
from repro.sim.kernel import Kernel
from repro.sim.rng import RngRegistry
from repro.stores.ssm import SSM


@dataclass
class Cluster:
    """A running cluster and its shared infrastructure."""

    kernel: Kernel
    rng: RngRegistry
    nodes: list
    load_balancer: LoadBalancer
    database: object
    ssm: object = None
    dataset: DatasetConfig = field(default_factory=DatasetConfig)

    def node(self, index):
        return self.nodes[index]

    def find_node(self, name):
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)


def build_cluster(
    n_nodes,
    seed=0,
    session_store="fasts",
    dataset=None,
    timing=None,
    retry_policy=None,
    hardening=None,
):
    """Build an ``n_nodes`` cluster sharing one database (and SSM, if used).

    With FastS, session state is node-local: a failover loses the failed-
    over sessions' state.  With SSM, session state lives outside the nodes
    and survives failover, at the cost of higher access latency (§5.3).
    """
    kernel = Kernel()
    rng = RngRegistry(seed)
    timing = timing or TimingModel()
    dataset = dataset or DatasetConfig()
    database = build_database(kernel, rng, dataset, timing)
    ssm = SSM(kernel) if session_store == "ssm" else None

    nodes = []
    for i in range(n_nodes):
        system = build_ebid_system(
            kernel=kernel,
            seed=seed,
            session_store=session_store,
            dataset=dataset,
            timing=timing,
            retry_policy=retry_policy,
            name=f"node{i + 1}",
            shared_database=database,
            shared_ssm=ssm,
        )
        nodes.append(Node(system))

    load_balancer = LoadBalancer(
        kernel, nodes, url_path_map=URL_PATH_MAP, hardening=hardening
    )
    return Cluster(
        kernel=kernel,
        rng=rng,
        nodes=nodes,
        load_balancer=load_balancer,
        database=database,
        ssm=ssm,
        dataset=dataset,
    )
