"""Cluster assembly: N eBid nodes, one database, one load balancer."""

from dataclasses import dataclass, field

from repro.appserver.timing import TimingModel
from repro.cluster.load_balancer import LoadBalancer
from repro.cluster.node import Node
from repro.cluster.sharding import BrickGroup, ShardRing
from repro.ebid.app import build_database, build_ebid_system
from repro.ebid.descriptors import URL_PATH_MAP
from repro.ebid.schema import DatasetConfig
from repro.sim.kernel import Kernel
from repro.sim.rng import RngRegistry
from repro.stores.ssm import SSM


@dataclass
class Cluster:
    """A running cluster and its shared infrastructure."""

    kernel: Kernel
    rng: RngRegistry
    nodes: list
    load_balancer: LoadBalancer
    database: object
    ssm: object = None
    dataset: DatasetConfig = field(default_factory=DatasetConfig)

    def node(self, index):
        return self.nodes[index]

    def find_node(self, name):
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)


def build_cluster(
    n_nodes,
    seed=0,
    session_store="fasts",
    dataset=None,
    timing=None,
    retry_policy=None,
    hardening=None,
):
    """Build an ``n_nodes`` cluster sharing one database (and SSM, if used).

    With FastS, session state is node-local: a failover loses the failed-
    over sessions' state.  With SSM, session state lives outside the nodes
    and survives failover, at the cost of higher access latency (§5.3).
    """
    kernel = Kernel()
    rng = RngRegistry(seed)
    timing = timing or TimingModel()
    dataset = dataset or DatasetConfig()
    database = build_database(kernel, rng, dataset, timing)
    ssm = SSM(kernel) if session_store == "ssm" else None

    nodes = []
    for i in range(n_nodes):
        system = build_ebid_system(
            kernel=kernel,
            seed=seed,
            session_store=session_store,
            dataset=dataset,
            timing=timing,
            retry_policy=retry_policy,
            name=f"node{i + 1}",
            shared_database=database,
            shared_ssm=ssm,
        )
        nodes.append(Node(system))

    load_balancer = LoadBalancer(
        kernel, nodes, url_path_map=URL_PATH_MAP, hardening=hardening
    )
    return Cluster(
        kernel=kernel,
        rng=rng,
        nodes=nodes,
        load_balancer=load_balancer,
        database=database,
        ssm=ssm,
        dataset=dataset,
    )


@dataclass
class ShardedCluster(Cluster):
    """A consistent-hash sharded cluster: 100+ nodes in replica groups.

    Extends :class:`Cluster` with the shard topology: the ring, the
    per-shard replicated SSM brick groups, and the node→shard map the
    load balancer routes by.  ``nodes`` stays the flat list (shard-major
    order), so everything written against ``Cluster`` keeps working.
    """

    ring: ShardRing = None
    shard_names: tuple = ()
    shard_groups: dict = field(default_factory=dict)  # shard -> BrickGroup
    shard_nodes: dict = field(default_factory=dict)  # shard -> [Node]
    shard_of_node: dict = field(default_factory=dict)  # node name -> shard
    #: Everything needed to boot *more* shards on the live cluster
    #: (elastic scale-out builds nodes mid-run with the same recipe).
    build_params: dict = field(default_factory=dict)

    def shard_group(self, shard):
        return self.shard_groups[shard]

    def nodes_of_shard(self, shard):
        return list(self.shard_nodes[shard])


def build_sharded_cluster(
    n_shards,
    nodes_per_shard=1,
    bricks_per_shard=2,
    seed=0,
    dataset=None,
    timing=None,
    retry_policy=None,
    hardening=None,
    vnodes=64,
):
    """Build a consistent-hash sharded cluster of replicated brick groups.

    Each of the ``n_shards`` shards owns a contiguous arc-set of the ring
    (``vnodes`` virtual nodes each), is served by ``nodes_per_shard``
    application-server nodes, and keeps its sessions in one replicated
    :class:`BrickGroup` of ``bricks_per_shard`` SSM bricks — so a single
    node (or brick) loss inside a shard degrades nothing that failover
    within the group can't absorb.  One database backs the whole cluster,
    as in the paper's deployment.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    kernel = Kernel()
    rng = RngRegistry(seed)
    timing = timing or TimingModel()
    dataset = dataset or DatasetConfig()
    database = build_database(kernel, rng, dataset, timing)

    shard_names = tuple(f"shard{i:03d}" for i in range(n_shards))
    ring = ShardRing(shard_names, vnodes=vnodes)
    shard_groups = {}
    shard_nodes = {}
    shard_of_node = {}
    nodes = []
    for shard in shard_names:
        group = BrickGroup(
            kernel, n_bricks=bricks_per_shard, name=f"{shard}/ssm"
        )
        shard_groups[shard] = group
        members = []
        for j in range(nodes_per_shard):
            system = build_ebid_system(
                kernel=kernel,
                seed=seed,
                session_store="ssm",
                dataset=dataset,
                timing=timing,
                retry_policy=retry_policy,
                name=f"{shard}-n{j + 1}",
                shared_database=database,
                shared_ssm=group,
            )
            node = Node(system)
            members.append(node)
            nodes.append(node)
            shard_of_node[node.name] = shard
        shard_nodes[shard] = members

    load_balancer = LoadBalancer(
        kernel,
        nodes,
        url_path_map=URL_PATH_MAP,
        hardening=hardening,
        ring=ring,
        shard_of_node=shard_of_node,
    )
    return ShardedCluster(
        kernel=kernel,
        rng=rng,
        nodes=nodes,
        load_balancer=load_balancer,
        database=database,
        ssm=None,
        dataset=dataset,
        ring=ring,
        shard_names=shard_names,
        shard_groups=shard_groups,
        shard_nodes=shard_nodes,
        shard_of_node=shard_of_node,
        build_params={
            "seed": seed,
            "nodes_per_shard": nodes_per_shard,
            "bricks_per_shard": bricks_per_shard,
            "timing": timing,
            "retry_policy": retry_policy,
        },
    )
