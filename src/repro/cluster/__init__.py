"""Multi-node clusters (§5.3).

A cluster is N independent application-server nodes behind a client-side
load balancer that spreads new logins evenly and maintains session affinity
for established sessions.  During recovery the balancer can fail a node
over entirely (the classical scheme), fail over only the requests that
would touch the recovering components ("microfailover", §6.1), or keep
routing to the recovering node (µRB without failover).
"""

from repro.cluster.cluster import Cluster, build_cluster
from repro.cluster.load_balancer import FailoverMode, LoadBalancer
from repro.cluster.node import Node

__all__ = ["Cluster", "FailoverMode", "LoadBalancer", "Node", "build_cluster"]
