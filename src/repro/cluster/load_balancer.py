"""The client-side load balancer (§5.3).

"Under failure-free operation, LB distributes new incoming login requests
evenly between the nodes and, for established sessions, LB implements
session affinity."  During a recovery the balancer supports three schemes:

* ``FULL`` failover: every request bound for the recovering node is
  redirected uniformly to the good nodes;
* ``MICRO`` failover (§6.1): only requests whose URL call path touches the
  recovering component(s) are redirected;
* ``NONE``: requests keep flowing to the recovering node (the paper's
  "µRB without failover", which Figure 1's averages favour).
"""

import enum

from repro.telemetry.metrics import MetricsRegistry


class FailoverMode(enum.Enum):
    NONE = "none"
    FULL = "full"
    MICRO = "micro"


class LoadBalancer:
    """Routes client requests to cluster nodes."""

    def __init__(self, kernel, nodes, url_path_map=None, metrics=None):
        self.kernel = kernel
        self.nodes = list(nodes)
        self.url_path_map = dict(url_path_map or {})
        self._affinity = {}  # cookie -> node
        #: Shared round-robin cursor over the *stable* ``self.nodes`` order.
        #: Never modded by a shifting candidate-list length: during failover
        #: ineligible nodes are skipped in place, so the rotation (and thus
        #: the spread) survives nodes leaving and rejoining.
        self._round_robin = 0
        #: node -> (FailoverMode, components being recovered)
        self._recovering = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Span layer (wired by the rig): when set, traces are attached at
        #: the balancer, so the path records which node served the request.
        self.span_collector = None
        self._routed = self.metrics.counter("lb.requests.routed")
        self._failed_over = self.metrics.counter("lb.requests.failed_over")
        self._forward_failures = self.metrics.counter("lb.forward.failures")
        self.sessions_failed_over = set()

    @property
    def requests_routed(self):
        return int(self._routed.value)

    @property
    def requests_failed_over(self):
        return int(self._failed_over.value)

    @property
    def forward_failures(self):
        return int(self._forward_failures.value)

    # ------------------------------------------------------------------
    # Recovery coordination (the RM notifies us, §5.3)
    # ------------------------------------------------------------------
    def begin_failover(self, node, mode=FailoverMode.FULL, components=()):
        """A node is about to recover: start redirecting per ``mode``."""
        self._recovering[node.name] = (mode, frozenset(components))
        self.kernel.trace.publish(
            "lb.failover.begin",
            node=node.name,
            mode=mode.value,
            components=tuple(components),
        )

    def end_failover(self, node):
        """The node recovered: requests are distributed as before."""
        if self._recovering.pop(node.name, None) is not None:
            self.kernel.trace.publish("lb.failover.end", node=node.name)

    def recovering_nodes(self):
        return set(self._recovering)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def handle_request(self, request):
        """Route one request; returns an event (same contract as a server)."""
        self._routed.inc()
        if self.span_collector is not None:
            self.span_collector.attach(request)
        node = self._route(request)
        done = self.kernel.event()
        self.kernel.process(
            self._forward(node, request, done),
            name=f"lb-{request.request_id}",
        )
        return done

    def _forward(self, node, request, done):
        try:
            response = yield node.server.handle_request(request)
        except Exception as exc:  # noqa: BLE001 - propagate, never hang
            # The forwarded event failed: without failing ``done`` the
            # client would wait on it forever and Taw would never account
            # the request.
            self._forward_failures.inc()
            self.kernel.trace.publish(
                "lb.forward.error",
                node=node.name,
                url=request.url,
                error=f"{type(exc).__name__}: {exc}",
            )
            done.fail(exc)
            return
        cookie = (response.payload or {}).get("cookie")
        if cookie:
            self._affinity[cookie] = node
        done.succeed(response)

    def _route(self, request):
        node = self._affinity.get(request.cookie) if request.cookie else None
        if node is None:
            return self._next_good_node()
        redirect = self._recovering.get(node.name)
        if redirect is None:
            return node
        mode, components = redirect
        if mode is FailoverMode.NONE:
            return node
        if mode is FailoverMode.MICRO and not self._touches(request, components):
            return node
        self._failed_over.inc()
        if request.cookie:
            self.sessions_failed_over.add(request.cookie)
        target = self._next_good_node(exclude=node)
        trace = self.kernel.trace
        if trace.enabled:  # hoisted: one publish per redirected request
            trace.publish(
                "lb.failover",
                url=request.url,
                from_node=node.name,
                to_node=target.name,
                mode=mode.value,
            )
        return target

    def _touches(self, request, components):
        """Would this request's call path enter any recovering component?"""
        best = None
        for prefix in self.url_path_map:
            if request.url.startswith(prefix) and (
                best is None or len(prefix) > len(best)
            ):
                best = prefix
        path = self.url_path_map.get(best, ())
        return bool(set(path) & components)

    def _next_good_node(self, exclude=None):
        candidates = [
            node
            for node in self.nodes
            if node is not exclude
            and not (
                node.name in self._recovering
                and self._recovering[node.name][0] is not FailoverMode.NONE
            )
        ]
        if not candidates:
            candidates = [n for n in self.nodes if n is not exclude] or self.nodes
        eligible = {id(node) for node in candidates}
        # Walk the stable ring from the shared cursor, skipping ineligible
        # nodes in place; modding by len(candidates) would re-seat the whole
        # rotation every time the candidate list changed length (failover
        # begin/end), skewing the spread toward some nodes.
        for _ in range(len(self.nodes)):
            node = self.nodes[self._round_robin % len(self.nodes)]
            self._round_robin += 1
            if id(node) in eligible:
                return node
        return candidates[0]
