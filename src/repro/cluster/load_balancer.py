"""The client-side load balancer (§5.3).

"Under failure-free operation, LB distributes new incoming login requests
evenly between the nodes and, for established sessions, LB implements
session affinity."  During a recovery the balancer supports three schemes:

* ``FULL`` failover: every request bound for the recovering node is
  redirected uniformly to the good nodes;
* ``MICRO`` failover (§6.1): only requests whose URL call path touches the
  recovering component(s) are redirected;
* ``NONE``: requests keep flowing to the recovering node (the paper's
  "µRB without failover", which Figure 1's averages favour).

With a :class:`~repro.core.hardening.HardeningPolicy` enabled, the
balancer additionally practices graceful degradation: it watches each
node's forwarded-response latency and forward failures, marks nodes
*degraded*, routes fresh (cookie-less, non-session-critical) requests away
from them, and — when every node is degraded — sheds those requests with a
fast ``503 Retry-After`` instead of queueing them behind a slowdown.
Session-critical requests always keep flowing: affinity outranks shedding.

The balancer is also a chaos injection surface: :meth:`inject_link_fault`
degrades the LB→node link (extra forward delay and/or a drop probability),
which clients observe as slow responses and network errors.
"""

import enum

from repro.appserver.http import HttpResponse, HttpStatus
from repro.core.hardening import HardeningPolicy
from repro.telemetry.metrics import MetricsRegistry


class LinkDropError(Exception):
    """The (chaos-degraded) LB→node link dropped a forwarded request."""


class FailoverMode(enum.Enum):
    NONE = "none"
    FULL = "full"
    MICRO = "micro"


class LoadBalancer:
    """Routes client requests to cluster nodes."""

    def __init__(
        self, kernel, nodes, url_path_map=None, metrics=None, hardening=None,
        ring=None, shard_of_node=None,
    ):
        """``ring``/``shard_of_node`` switch on consistent-hash sharding:
        cookie-less requests route to their ``client_id``'s owner shard
        (instead of global round-robin) and failover walks the owner's
        brick-group replicas first, then the ring's successor shards.
        Both default to None, which keeps the classic small-cluster
        behavior bit-for-bit.
        """
        self.kernel = kernel
        self.nodes = list(nodes)
        self.url_path_map = dict(url_path_map or {})
        self.ring = ring
        self._node_shard = dict(shard_of_node or {})
        if ring is not None and not self._node_shard:
            raise ValueError("a ring needs shard_of_node to map nodes")
        #: shard -> [nodes serving it], in self.nodes order.
        self._shard_nodes = {}
        for node in self.nodes:
            shard = self._node_shard.get(node.name)
            if shard is not None:
                self._shard_nodes.setdefault(shard, []).append(node)
        self._shard_cursor = {}
        self._ring_successors_cache = {}
        self.hardening = (
            hardening if hardening is not None else HardeningPolicy.disabled()
        )
        self._affinity = {}  # cookie -> node
        #: Shared round-robin cursor over the *stable* ``self.nodes`` order.
        #: Never modded by a shifting candidate-list length: during failover
        #: ineligible nodes are skipped in place, so the rotation (and thus
        #: the spread) survives nodes leaving and rejoining.
        self._round_robin = 0
        #: node -> (FailoverMode, components being recovered)
        self._recovering = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Span layer (wired by the rig): when set, traces are attached at
        #: the balancer, so the path records which node served the request.
        self.span_collector = None
        self._routed = self.metrics.counter("lb.requests.routed")
        self._failed_over = self.metrics.counter("lb.requests.failed_over")
        self._forward_failures = self.metrics.counter("lb.forward.failures")
        self.sessions_failed_over = set()
        #: node name -> (delay seconds, drop probability, rng) chaos faults.
        self._link_faults = {}
        self._link_dropped = self.metrics.counter("lb.link.dropped")
        #: Graceful-degradation state (active only when hardening enables
        #: ``shed_degraded``): recent per-node latency samples, recent
        #: forward-failure times, and degraded-until marks.
        self._latency = {}
        self._fail_times = {}
        self._degraded_until = {}
        #: node name -> why it was last marked degraded ("latency",
        #: "failures", or an external reason from :meth:`note_degraded`).
        self._degraded_reason = {}
        self._shed = self.metrics.counter("lb.requests.shed")
        self._degraded_marks = self.metrics.counter("lb.degraded.marks")
        #: Shard-aware failover accounting: rerouted within the owner's
        #: replica group vs escaped to a ring-successor shard.
        self._shard_local_failover = self.metrics.counter(
            "lb.shard.failover.local"
        )
        self._shard_cross_failover = self.metrics.counter(
            "lb.shard.failover.cross"
        )

    @property
    def requests_routed(self):
        return int(self._routed.value)

    @property
    def requests_failed_over(self):
        return int(self._failed_over.value)

    @property
    def forward_failures(self):
        return int(self._forward_failures.value)

    @property
    def requests_shed(self):
        return int(self._shed.value)

    # ------------------------------------------------------------------
    # Elastic resharding: shards join and leave a live balancer
    # ------------------------------------------------------------------
    def add_shard_nodes(self, shard, nodes):
        """Register a joining shard's nodes for routing.

        The caller owns the cutover ordering (nodes registered *before*
        the ring learns the shard, so the first rerouted request already
        has somewhere to go).  Any cached ring-successor walks are stale
        the moment the ring changes, so the cache is dropped wholesale.
        """
        for node in nodes:
            self.nodes.append(node)
            self._node_shard[node.name] = shard
            self._shard_nodes.setdefault(shard, []).append(node)
        self._ring_successors_cache.clear()
        self.kernel.trace.publish(
            "lb.shard.join", shard=shard,
            nodes=tuple(node.name for node in nodes),
        )

    def remove_shard(self, shard):
        """Deregister a departed shard from every routing structure.

        Pruning has to be total: a surviving cursor, degraded mark, ring
        reference, or affinity pin could hand a request to a node that no
        longer serves anyone.  Returns the removed nodes (the caller may
        still drain their in-flight work).
        """
        members = self._shard_nodes.pop(shard, [])
        names = {node.name for node in members}
        self.nodes = [node for node in self.nodes if node.name not in names]
        self._shard_cursor.pop(shard, None)
        # Every cached successor walk enumerates *other* shards too, so a
        # per-shard pop is not enough: drop the whole cache.
        self._ring_successors_cache.clear()
        self._affinity = {
            cookie: node
            for cookie, node in self._affinity.items()
            if node.name not in names
        }
        for name in names:
            self._node_shard.pop(name, None)
            self._recovering.pop(name, None)
            self._link_faults.pop(name, None)
            self._latency.pop(name, None)
            self._fail_times.pop(name, None)
            self._degraded_until.pop(name, None)
            self._degraded_reason.pop(name, None)
        self.kernel.trace.publish(
            "lb.shard.leave", shard=shard, nodes=tuple(sorted(names))
        )
        return members

    def drop_affinity(self, cookies):
        """Forget affinity pins for migrated sessions: their state moved
        to another shard's brick group, so the next request must re-route
        by the ring instead of returning to the old node."""
        for cookie in cookies:
            self._affinity.pop(cookie, None)

    # ------------------------------------------------------------------
    # Chaos injection surface: LB → node link faults
    # ------------------------------------------------------------------
    def inject_link_fault(self, node, delay=0.0, drop_rate=0.0, rng=None):
        """Degrade the link to ``node``: extra delay and/or dropped forwards."""
        if drop_rate > 0 and rng is None:
            raise ValueError("drop_rate needs an rng for the drop draws")
        self._link_faults[node.name] = (delay, drop_rate, rng)
        self.kernel.trace.publish(
            "lb.link.fault", node=node.name, delay=delay, drop_rate=drop_rate
        )

    def clear_link_fault(self, node):
        """The link to ``node`` heals."""
        if self._link_faults.pop(node.name, None) is not None:
            self.kernel.trace.publish("lb.link.heal", node=node.name)

    # ------------------------------------------------------------------
    # Recovery coordination (the RM notifies us, §5.3)
    # ------------------------------------------------------------------
    def begin_failover(self, node, mode=FailoverMode.FULL, components=()):
        """A node is about to recover: start redirecting per ``mode``."""
        self._recovering[node.name] = (mode, frozenset(components))
        self.kernel.trace.publish(
            "lb.failover.begin",
            node=node.name,
            mode=mode.value,
            components=tuple(components),
        )

    def end_failover(self, node):
        """The node recovered: requests are distributed as before."""
        if self._recovering.pop(node.name, None) is not None:
            self.kernel.trace.publish("lb.failover.end", node=node.name)

    def recovering_nodes(self):
        return set(self._recovering)

    def node_for_session(self, cookie):
        """The node holding ``cookie``'s session affinity, or None.

        Cluster rigs use this to deliver a failure report to the recovery
        manager of the node that actually served the failing client.
        """
        if not cookie:
            return None
        return self._affinity.get(cookie)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def handle_request(self, request):
        """Route one request; returns an event (same contract as a server)."""
        self._routed.inc()
        if self.span_collector is not None:
            self.span_collector.attach(request)
        node = self._route(request)
        done = self.kernel.event()
        if node is None:
            # Graceful degradation: every node is degraded, so queueing this
            # non-session request behind the slowdown would only deepen it.
            # Answer a fast 503 instead; Retry-After pushes the client past
            # the degraded window.
            self._shed.inc()
            self.kernel.trace.publish("lb.shed", url=request.url)
            return done.succeed(
                HttpResponse(
                    status=HttpStatus.SERVICE_UNAVAILABLE,
                    body="<html>error: service degraded, retry later</html>",
                    retry_after=self.hardening.shed_retry_after,
                )
            )
        self.kernel.process(
            self._forward(node, request, done),
            name=f"lb-{request.request_id}",
        )
        return done

    def _forward(self, node, request, done):
        started = self.kernel.now
        fault = self._link_faults.get(node.name)
        if fault is not None:
            delay, drop_rate, rng = fault
            if delay > 0:
                yield self.kernel.timeout(delay)
            if drop_rate > 0 and rng.random() < drop_rate:
                # The connection dies mid-flight; the client observes a
                # network error, its strongest failure signal.
                self._link_dropped.inc()
                self._note_forward_failure(node)
                self.kernel.trace.publish(
                    "lb.link.drop", node=node.name, url=request.url
                )
                done.fail(LinkDropError(f"link to {node.name} dropped request"))
                return
        try:
            response = yield node.server.handle_request(request)
        except Exception as exc:  # noqa: BLE001 - propagate, never hang
            # The forwarded event failed: without failing ``done`` the
            # client would wait on it forever and Taw would never account
            # the request.
            self._forward_failures.inc()
            self._note_forward_failure(node)
            self.kernel.trace.publish(
                "lb.forward.error",
                node=node.name,
                url=request.url,
                error=f"{type(exc).__name__}: {exc}",
            )
            done.fail(exc)
            return
        self._note_latency(node, self.kernel.now - started)
        cookie = (response.payload or {}).get("cookie")
        if cookie:
            self._affinity[cookie] = node
        done.succeed(response)

    def _route(self, request):
        node = self._affinity.get(request.cookie) if request.cookie else None
        if node is None:
            # Cookie-less requests carry no session state: they may be
            # routed anywhere, away from degraded nodes, or shed (None).
            return self._fresh_node(request)
        redirect = self._recovering.get(node.name)
        if redirect is None:
            if self._shedding() and node.name in self.degraded_nodes():
                # Session state lives in the external store, so a session
                # pinned to a degraded (slow or link-flaky) node can be
                # served anywhere: route around the degradation instead
                # of queueing behind it — failover without a reboot.
                # ``_fresh_node`` skips degraded nodes, so this stays put
                # (returns the pinned node) when nowhere is healthier.
                target = self._fresh_node(request)
                if target is not None and target is not node:
                    self._failed_over.inc()
                    self.sessions_failed_over.add(request.cookie)
                    self.kernel.trace.publish(
                        "lb.degraded.reroute",
                        url=request.url,
                        from_node=node.name,
                        to_node=target.name,
                    )
                    return target
            return node
        mode, components = redirect
        if mode is FailoverMode.NONE:
            return node
        if mode is FailoverMode.MICRO and not self._touches(request, components):
            return node
        self._failed_over.inc()
        if request.cookie:
            self.sessions_failed_over.add(request.cookie)
        target = self._next_good_node(exclude=node, request=request)
        trace = self.kernel.trace
        if trace.enabled:  # hoisted: one publish per redirected request
            trace.publish(
                "lb.failover",
                url=request.url,
                from_node=node.name,
                to_node=target.name,
                mode=mode.value,
            )
        return target

    def _touches(self, request, components):
        """Would this request's call path enter any recovering component?"""
        best = None
        for prefix in self.url_path_map:
            if request.url.startswith(prefix) and (
                best is None or len(prefix) > len(best)
            ):
                best = prefix
        path = self.url_path_map.get(best, ())
        return bool(set(path) & components)

    # ------------------------------------------------------------------
    # Graceful degradation (hardening)
    # ------------------------------------------------------------------
    def _shedding(self):
        return self.hardening.enabled and self.hardening.shed_degraded

    def degraded_nodes(self):
        """Names of nodes currently marked degraded."""
        now = self.kernel.now
        return {
            name for name, until in self._degraded_until.items() if until > now
        }

    def _note_latency(self, node, elapsed):
        if not self._shedding():
            return
        samples = self._latency.setdefault(node.name, [])
        samples.append(elapsed)
        if len(samples) > self.hardening.latency_samples:
            del samples[0]
        if (
            len(samples) >= self.hardening.latency_samples
            and sum(samples) / len(samples) > self.hardening.shed_latency
        ):
            self._mark_degraded(node.name, "latency")

    def _note_forward_failure(self, node):
        if not self._shedding():
            return
        horizon = self.kernel.now - self.hardening.degraded_ttl
        times = [
            t for t in self._fail_times.get(node.name, ()) if t >= horizon
        ]
        times.append(self.kernel.now)
        self._fail_times[node.name] = times
        if len(times) >= self.hardening.shed_failure_threshold:
            self._mark_degraded(node.name, "failures")

    def note_degraded(self, node, reason, ttl=None):
        """External evidence (e.g. the RM deferring a node-wide recovery
        on backoff) that ``node`` is sick: route around it for ``ttl``
        seconds (default ``degraded_ttl``)."""
        if self._shedding():
            self._mark_degraded(node.name, reason, ttl=ttl)

    def _mark_degraded(self, name, reason, ttl=None):
        now = self.kernel.now
        if ttl is None or ttl <= 0:
            ttl = self.hardening.degraded_ttl
        fresh = self._degraded_until.get(name, 0.0) <= now
        self._degraded_until[name] = max(
            self._degraded_until.get(name, 0.0), now + ttl
        )
        self._degraded_reason[name] = reason
        if fresh:
            self._degraded_marks.inc()
            self.kernel.trace.publish(
                "lb.degraded", node=name, reason=reason,
                until=self._degraded_until[name],
            )
        return self._degraded_until[name]

    def _eligible(self, node, request=None):
        """May ``request`` be routed to ``node`` despite recovery windows?

        A node in FULL failover takes nothing; a node in MICRO failover
        (a µRB, or a long-lived component quarantine) stays eligible for
        requests that never touch the recovering components — excluding
        it wholesale would turn every quarantine into a node outage.
        """
        entry = self._recovering.get(node.name)
        if entry is None:
            return True
        mode, components = entry
        if mode is FailoverMode.NONE:
            return True
        if mode is FailoverMode.MICRO and request is not None:
            return not self._touches(request, components)
        return False

    # ------------------------------------------------------------------
    # Consistent-hash shard routing (active only when a ring is wired)
    # ------------------------------------------------------------------
    def shard_of(self, node):
        """The shard ``node`` serves, or None without a ring."""
        return self._node_shard.get(node.name)

    def _node_in_shard(self, shard, request=None, exclude=None,
                       skip_degraded=False):
        """An eligible node of ``shard``'s replica group, or None.

        Rotates a per-shard cursor so a multi-node group spreads load
        evenly; honours recovery windows and (optionally) degraded marks.
        """
        nodes = self._shard_nodes.get(shard)
        if not nodes:
            return None
        degraded = self.degraded_nodes() if skip_degraded else ()
        cursor = self._shard_cursor.get(shard, 0)
        for i in range(len(nodes)):
            node = nodes[(cursor + i) % len(nodes)]
            if node is exclude or node.name in degraded:
                continue
            if not self._eligible(node, request):
                continue
            self._shard_cursor[shard] = (cursor + i + 1) % len(nodes)
            return node
        return None

    def _ring_successor_shards(self, shard):
        """Deterministic distinct-shard walk order when ``shard``'s own
        group cannot serve (derived from the ring, cached)."""
        order = self._ring_successors_cache.get(shard)
        if order is None:
            order = tuple(
                s for s in self.ring.preference(shard) if s != shard
            )
            self._ring_successors_cache[shard] = order
        return order

    def _ring_route(self, request):
        """Owner-shard placement for a cookie-less request, or None.

        Hashes the request's ``client_id`` on the ring, then walks the
        preference list (owner shard first, ring successors after) until a
        shard has an eligible node.  Returning None sends the caller down
        the legacy global path, which owns the shed-vs-best-effort call.
        """
        key = request.client_id if request is not None else 0
        skip_degraded = self._shedding()
        for pos, shard in enumerate(self.ring.preference(key)):
            node = self._node_in_shard(
                shard, request, skip_degraded=skip_degraded
            )
            if node is not None:
                if pos:
                    self._shard_cross_failover.inc()
                return node
        return None

    def _fresh_node(self, request=None):
        """Node for a cookie-less request, or None to shed it.

        Honours degraded marks on top of the recovering-node rules; the
        rotation cursor is shared with :meth:`_next_good_node` so the
        round-robin spread stays coherent.
        """
        if self.ring is not None:
            node = self._ring_route(request)
            if node is not None:
                return node
        if not self._shedding():
            return self._next_good_node(request=request)
        degraded = self.degraded_nodes()
        if not degraded:
            return self._next_good_node(request=request)
        candidates = [
            node
            for node in self.nodes
            if node.name not in degraded and self._eligible(node, request)
        ]
        if not candidates:
            # Everywhere is degraded, so the marks carry no routing
            # information.  Shed (fast 503) only when every node is
            # *latency*-degraded — queueing more requests behind a
            # cluster-wide slowdown deepens it.  For failure- or
            # deferral-driven marks, refusing service is strictly worse
            # than trying a node: route normally, best effort.
            if all(
                self._degraded_reason.get(name) == "latency"
                for name in degraded
            ):
                return None
            return self._next_good_node(request=request)
        eligible = {id(node) for node in candidates}
        for _ in range(len(self.nodes)):
            node = self.nodes[self._round_robin % len(self.nodes)]
            self._round_robin += 1
            if id(node) in eligible:
                return node
        return candidates[0]

    def _next_good_node(self, exclude=None, request=None):
        if self.ring is not None:
            shard = (
                self._node_shard.get(exclude.name)
                if exclude is not None else None
            )
            if shard is not None:
                # Shard-aware failover: the replicated brick group means
                # any sibling node of the shard can serve the session —
                # reroute within the group first, then walk the ring.
                skip_degraded = self._shedding()
                node = self._node_in_shard(
                    shard, request, exclude=exclude,
                    skip_degraded=skip_degraded,
                )
                if node is not None:
                    self._shard_local_failover.inc()
                    return node
                for successor in self._ring_successor_shards(shard):
                    node = self._node_in_shard(
                        successor, request, skip_degraded=skip_degraded
                    )
                    if node is not None:
                        self._shard_cross_failover.inc()
                        return node
            else:
                node = self._ring_route(request)
                if node is not None and node is not exclude:
                    return node
        candidates = [
            node
            for node in self.nodes
            if node is not exclude and self._eligible(node, request)
        ]
        if not candidates:
            candidates = [n for n in self.nodes if n is not exclude] or self.nodes
        eligible = {id(node) for node in candidates}
        # Walk the stable ring from the shared cursor, skipping ineligible
        # nodes in place; modding by len(candidates) would re-seat the whole
        # rotation every time the candidate list changed length (failover
        # begin/end), skewing the spread toward some nodes.
        for _ in range(len(self.nodes)):
            node = self.nodes[self._round_robin % len(self.nodes)]
            self._round_robin += 1
            if id(node) in eligible:
                return node
        return candidates[0]
