"""Consistent-hash session sharding and replicated SSM brick groups.

Growing the cluster past a handful of nodes (§5.3 stops at 8) needs two
pieces the paper's deployment never had to name:

* a :class:`ShardRing` — the classic consistent-hash ring with virtual
  nodes.  Placement is derived from SHA-256 digests of ``"shard#vnode"``
  strings, so it is deterministic across processes and runs (no reliance
  on Python's per-process string hashing), spreads keys evenly at ~64
  virtual nodes per shard, and moves only ``~1/n`` of the keys when a
  shard joins or leaves;
* a :class:`BrickGroup` — SSM already claims its bricks replicate session
  state ([26]); at one-brick scale that replication was invisible.  A
  brick group makes it real: writes go to every live brick, reads fall
  through to the first live brick that still has the object, and a single
  brick crash therefore no longer loses session availability for the
  whole shard.

The :class:`~repro.cluster.load_balancer.LoadBalancer` consults the ring
for session→shard routing (cookie-less requests hash their ``client_id``;
established sessions keep cookie affinity) and uses the ring's preference
order for shard-aware failover: reroute within the shard group first —
the replicated brick group means any node of the group can serve the
session — then walk the ring's successor shards.
"""

import hashlib
from bisect import bisect_right

from repro.stores.ssm import SSM


def stable_hash(key):
    """A 64-bit integer hash of ``key``, stable across processes.

    ``hash()`` would be cheaper but strings are salted per interpreter;
    determinism across spawn workers is part of the jobs=1 ≡ jobs=N
    contract, so placement has to come from a real digest.
    """
    if isinstance(key, bytes):
        data = key
    else:
        data = str(key).encode("utf-8")
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class ShardRing:
    """Consistent-hash ring mapping session keys to named shards."""

    def __init__(self, shards=(), vnodes=64):
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = vnodes
        self._points = []  # sorted [(hash, shard)]
        self._hashes = []  # parallel list of hashes, for bisect
        self._shards = []
        for shard in shards:
            self.add_shard(shard)

    def __len__(self):
        return len(self._shards)

    @property
    def shards(self):
        """Shard names in insertion order."""
        return tuple(self._shards)

    def add_shard(self, shard):
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} already on the ring")
        self._shards.append(shard)
        for i in range(self.vnodes):
            point = (stable_hash(f"{shard}#{i}"), shard)
            self._points.append(point)
        self._points.sort()
        self._hashes = [h for h, _ in self._points]

    def remove_shard(self, shard):
        if shard not in self._shards:
            raise KeyError(shard)
        self._shards.remove(shard)
        self._points = [p for p in self._points if p[1] != shard]
        self._hashes = [h for h, _ in self._points]

    def shard_for(self, key):
        """The shard owning ``key`` (deterministic placement)."""
        if not self._points:
            raise ValueError("shard_for on an empty ring")
        index = bisect_right(self._hashes, stable_hash(key))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def preference(self, key, limit=None):
        """Distinct shards in ring order starting at ``key``'s owner.

        The first entry is :meth:`shard_for`; the rest are the successor
        shards a shard-aware failover walks when the owner is unavailable.
        """
        if not self._points:
            raise ValueError("preference on an empty ring")
        limit = len(self._shards) if limit is None else limit
        start = bisect_right(self._hashes, stable_hash(key))
        seen = []
        n = len(self._points)
        for offset in range(n):
            shard = self._points[(start + offset) % n][1]
            if shard not in seen:
                seen.append(shard)
                if len(seen) >= limit:
                    break
        return seen

    def counts(self, keys):
        """Shard → how many of ``keys`` it owns (balance diagnostics)."""
        counts = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    def arc_measures(self):
        """Shard → fraction of the 2^64 hash space it owns.

        The exact stationary key share of each shard under uniform
        hashing, computed by walking the sorted ring once — no key
        enumeration.  Elastic resharding diffs these measures before and
        after a churn to plan the *minimal* session delta: a joining
        shard's intake from each donor is exactly the measure the donor
        lost, and a leaving shard's keys land on each survivor in
        proportion to the measure it gained.
        """
        if not self._points:
            return {}
        space = 1 << 64
        owned = {shard: 0 for shard in self._shards}
        # bisect_right routing means the point at hash h owns the arc
        # (prev_h, h]; the first point also owns the wraparound arc past
        # the last point, which the negative prev handles.
        prev = self._points[-1][0] - space
        for h, shard in self._points:
            owned[shard] += h - prev
            prev = h
        return {shard: arc / space for shard, arc in owned.items()}


class BrickGroup:
    """A replicated group of SSM bricks serving one shard's sessions.

    Presents the same store interface as a single :class:`SSM` (the
    application server neither knows nor cares), but writes replicate to
    every live brick and reads fall through the replicas, so the group
    stays available while *any* brick lives.  ``crashed`` in the
    single-brick sense maps to "every brick crashed".
    """

    survives_microreboot = True
    survives_jvm_restart = True

    def __init__(self, kernel, n_bricks=2, lease_ttl=SSM.DEFAULT_LEASE_TTL,
                 name="BrickGroup"):
        if n_bricks <= 0:
            raise ValueError(f"a brick group needs >=1 brick, got {n_bricks}")
        self.kernel = kernel
        self.name = name
        self.bricks = [
            SSM(kernel, lease_ttl=lease_ttl, name=f"{name}/brick{i}")
            for i in range(n_bricks)
        ]
        self._access_time = 0.0

    # ``access_time`` is assigned by build_ebid_system the same way it is
    # for a bare SSM; fan it out so per-brick accounting stays coherent.
    @property
    def access_time(self):
        return self._access_time

    @access_time.setter
    def access_time(self, value):
        self._access_time = value
        for brick in self.bricks:
            brick.access_time = value

    @property
    def crashed(self):
        return all(brick.crashed for brick in self.bricks)

    @property
    def live_bricks(self):
        return [brick for brick in self.bricks if not brick.crashed]

    def __len__(self):
        ids = set()
        for brick in self.bricks:
            ids.update(brick.session_ids())
        return len(ids)

    # ------------------------------------------------------------------
    # Store API (same contract as SSM)
    # ------------------------------------------------------------------
    def read(self, session_id):
        """First live replica's copy, or None when every replica misses.

        A crashed brick is skipped, not consulted: its reads would miss
        anyway.  Falling through on a *live* miss matters too — a brick
        that was down during the session's write rejoins empty, and the
        read must not stop there.
        """
        for brick in self.bricks:
            if brick.crashed:
                continue
            data = brick.read(session_id)
            if data is not None:
                return data
        return None

    def write(self, session_id, data):
        """Replicate to every live brick (crashed bricks drop the write)."""
        for brick in self.bricks:
            if not brick.crashed:
                brick.write(session_id, data)

    def delete(self, session_id):
        for brick in self.bricks:
            brick.delete(session_id)

    def session_ids(self):
        ids = set()
        for brick in self.bricks:
            ids.update(brick.session_ids())
        return sorted(ids)

    # ------------------------------------------------------------------
    # Chaos surface
    # ------------------------------------------------------------------
    def crash_brick(self, index):
        """One brick of the group becomes unreachable."""
        self.bricks[index].crash()

    def restart_brick(self, index):
        """The brick rejoins *empty* (crash-only semantics).

        Whatever the brick held when it crashed is stale by exactly the
        writes it missed while down; serving that copy as the group's
        first live hit would hand the application old session state.
        Wiping on rejoin makes the next read fall through to a current
        replica, and the next write-all-live replication backfills this
        brick — the lease renewals of active sessions do that for free.
        """
        brick = self.bricks[index]
        if brick.crashed:
            brick.wipe()
        brick.restart()

    # ------------------------------------------------------------------
    # Lifecycle notifications
    # ------------------------------------------------------------------
    def notify_jvm_exit(self, server):
        """Bricks live outside every JVM: nothing is lost."""
