"""One middle-tier node: the OS hosting a JVM running the server.

The node is the recovery manager's ``node_controller``: it provides the
two coarsest recovery actions (JVM restart, OS reboot) and models OS-level
memory, which an extra-JVM leak exhausts (Table 2: only an OS reboot
cures that).
"""

DEFAULT_OS_MEMORY = 2 * 1024 * 1024 * 1024  # paper nodes have 1-1.5 GB + swap


class Node:
    """OS + JVM wrapper around one :class:`~repro.ebid.app.EbidSystem`."""

    def __init__(self, system, os_memory=DEFAULT_OS_MEMORY):
        self.system = system
        self.os_memory = os_memory
        self.os_leaked = 0
        self.os_reboots = 0
        self.jvm_restarts = 0
        #: CPU hogs injected by chaos campaigns (external processes on the
        #: node stealing cycles from the JVM).
        self.slowdown_hogs = 0

    @property
    def name(self):
        return self.system.server.name

    @property
    def server(self):
        return self.system.server

    @property
    def kernel(self):
        return self.system.kernel

    @property
    def os_available(self):
        return self.os_memory - self.os_leaked

    # ------------------------------------------------------------------
    # OS-level memory (extra-JVM leaks)
    # ------------------------------------------------------------------
    def leak_os_memory(self, nbytes):
        """Memory leaked by another process on this node."""
        self.os_leaked += nbytes
        self._apply_os_pressure()

    def _apply_os_pressure(self):
        if self.os_available <= 0:
            # The OS cannot service the JVM any more: accepts start failing.
            self.server.accept_fault = "ENOMEM: node out of memory"

    # ------------------------------------------------------------------
    # Node-level slowdown (chaos fault)
    # ------------------------------------------------------------------
    def inject_slowdown(self, hogs=2):
        """Another process on this node starts hogging the CPU.

        Each hog stretches every request's service time like a runaway
        thread — except it lives *outside* the JVM, so no microreboot or
        JVM restart cures it (an OS reboot kills the process).
        """
        for _ in range(hogs):
            self.server.cpu.add_hog()
        self.slowdown_hogs += hogs
        self.kernel.trace.publish(
            "node.slowdown", node=self.name, hogs=self.slowdown_hogs
        )

    def clear_slowdown(self):
        """The hogging process exits (chaos heal or OS reboot)."""
        if self.slowdown_hogs <= 0:
            return
        for _ in range(self.slowdown_hogs):
            self.server.cpu.remove_hog()
        self.slowdown_hogs = 0
        self.kernel.trace.publish("node.slowdown.clear", node=self.name)

    # ------------------------------------------------------------------
    # Recovery actions (the node_controller protocol)
    # ------------------------------------------------------------------
    def restart_jvm(self):
        """Generator: kill -9 the JVM and cold-boot it (§4, via ssh)."""
        self.jvm_restarts += 1
        started = self.kernel.now
        self.kernel.trace.publish("node.restart", node=self.name, action="jvm")
        self.system.database.close_sessions_owned_by(
            self._db_session_owners()
        )
        yield from self.server.restart_jvm()
        # A JVM restart does not help an exhausted OS: reinstate pressure.
        self._apply_os_pressure()
        self.kernel.trace.publish(
            "node.restart.end", node=self.name, action="jvm",
            duration=self.kernel.now - started,
        )

    def reboot_os(self):
        """Generator: reboot the whole node."""
        self.os_reboots += 1
        started = self.kernel.now
        self.kernel.trace.publish("node.restart", node=self.name, action="os")
        self.server.kill()
        yield self.kernel.timeout(self.server.timing.os_reboot_time)
        self.os_leaked = 0
        self.clear_slowdown()  # the hogging processes died with the OS
        yield from self.server.boot(cold=True)
        self.kernel.trace.publish(
            "node.restart.end", node=self.name, action="os",
            duration=self.kernel.now - started,
        )

    def _db_session_owners(self):
        """Owners of database sessions opened from this JVM.

        When the JVM dies, the OS tears down its TCP connections and the
        database terminates the corresponding sessions immediately (§7).
        """
        return [
            session.owner
            for session in self.system.database._sessions.values()
            if getattr(session.owner, "server", None) is self.server
        ]
