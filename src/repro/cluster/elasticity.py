"""Elastic resharding: shards join and leave a *live* sharded cluster.

The ShardRing's minimal-remapping guarantee is only useful at scale if
the cluster can act on it mid-run: add capacity under load, drain a sick
shard during a fault storm, and never lose a session doing it.  Two
pieces deliver that:

* :class:`ReshardCoordinator` — executes one shard add/remove as a
  copy-then-cutover transaction.  It diffs the ring's
  :meth:`~repro.cluster.sharding.ShardRing.arc_measures` before and
  after the churn to plan the **minimal** session delta (exactly the
  hash-space measure that actually moved, nothing else), boots or
  drains application-server nodes, migrates the cohort population
  (largest-remainder proportional, deterministic) and the brick groups'
  concrete SSM sessions, updates the load balancer's routing atomically
  with the ring, and emits ``reshard.*`` bus events so incidents/SLO
  attribute the migration cost correctly.  Migrated sessions ride an
  in-transit window — briefly unavailable, never lost — and every
  operation appends a JSON-able plan record, which the benchmarks gate
  for same-seed and jobs=1 ≡ jobs=N determinism;
* :class:`ElasticPolicy` — the controller that makes resharding
  *elastic*: it watches each shard's probe-grounded failure EWMA and,
  after a confirmation streak, replaces the sick shard (boot a fresh
  shard, then drain the sick one onto the ring's new layout).  During a
  multi-shard fault storm this is the scale-out-beats-static-capacity
  arm: the static cluster pays every re-injected fault pulse, the
  elastic one pays a bounded migration window instead.

Ordering matters and is fixed here once: on **add**, nodes register with
the balancer *before* the ring learns the shard (the first rerouted
request already has somewhere to go); on **remove**, the ring changes
*first* so the survivors own the keys before the balancer forgets the
departed nodes.  Both directions finish by re-keying the probe model —
ring churn can silently re-route an existing probe id, so every probe id
is recomputed from the new ring.
"""

import re

from repro.cluster.node import Node
from repro.cluster.sharding import BrickGroup
from repro.ebid.app import build_ebid_system

_SHARD_NAME = re.compile(r"^shard(\d+)$")


def apportion(weights, total):
    """Split integer ``total`` across ``weights`` (largest remainder).

    The remove-side twin of the cohort engine's ``proportional_split``:
    weights are hash-space measures (floats), not capped cell counts.
    Deterministic and RNG-free; ties go to the lower index.
    """
    mass = sum(weights)
    out = [0] * len(weights)
    if total <= 0 or mass <= 0:
        return out
    remainders = []
    assigned = 0
    for i, weight in enumerate(weights):
        exact = total * weight / mass
        base = int(exact)
        out[i] = base
        assigned += base
        remainders.append((exact - base, i))
    remainders.sort(key=lambda r: (-r[0], r[1]))
    for _frac, i in remainders[: total - assigned]:
        out[i] += 1
    return out


class ReshardCoordinator:
    """Adds/removes shards on a live cluster with zero session loss."""

    def __init__(
        self,
        cluster,
        engine,
        probe_model=None,
        migration_window=2.0,
        on_shard_added=None,
        on_shard_removed=None,
    ):
        """Args:
            cluster: a :class:`~repro.cluster.cluster.ShardedCluster`.
            engine: the :class:`~repro.workload.cohort.CohortEngine`
                carrying the session population.
            probe_model: optional outcome model with ``add_shard`` /
                ``remove_shard`` hooks (re-keyed after every churn).
            on_shard_added: ``f(shard, nodes)`` called after the new
                nodes exist but *before* traffic shifts — the rig wires
                recovery managers and health registration here.
            on_shard_removed: ``f(shard, nodes)`` called after cutover.
        """
        self.cluster = cluster
        self.engine = engine
        self.probe_model = probe_model
        self.migration_window = migration_window
        self.on_shard_added = on_shard_added
        self.on_shard_removed = on_shard_removed
        self.plans = []
        self.retired_groups = {}
        serials = [0]
        for name in cluster.shard_names:
            match = _SHARD_NAME.match(name)
            if match:
                serials.append(int(match.group(1)) + 1)
        self._serial = max(serials)

    @property
    def kernel(self):
        return self.cluster.kernel

    def next_shard_name(self):
        name = f"shard{self._serial:03d}"
        self._serial += 1
        return name

    # ------------------------------------------------------------------
    def add_shard(self, name=None):
        """Scale out by one shard; migrate exactly the stolen keyspace.

        Returns the new shard's name.
        """
        cluster = self.cluster
        ring = cluster.ring
        name = name or self.next_shard_name()
        if name in ring.shards:
            raise ValueError(f"shard {name!r} already on the ring")
        self.kernel.trace.publish("reshard.begin", op="add", shard=name)
        before = ring.arc_measures()

        # 1. Boot the shard: brick group + application-server nodes, warm
        # (zero simulated boot time), against the shared database.
        params = cluster.build_params
        group = BrickGroup(
            self.kernel,
            n_bricks=params.get("bricks_per_shard", 2),
            name=f"{name}/ssm",
        )
        members = []
        for j in range(params.get("nodes_per_shard", 1)):
            system = build_ebid_system(
                kernel=self.kernel,
                seed=params.get("seed", 0),
                session_store="ssm",
                dataset=cluster.dataset,
                timing=params.get("timing"),
                retry_policy=params.get("retry_policy"),
                name=f"{name}-n{j + 1}",
                shared_database=cluster.database,
                shared_ssm=group,
            )
            members.append(Node(system))

        # 2. Register everywhere traffic is steered from, then let the
        # rig wire recovery managers — all before the ring shifts a key.
        cluster.shard_groups[name] = group
        cluster.shard_nodes[name] = members
        cluster.shard_names = tuple(cluster.shard_names) + (name,)
        for node in members:
            cluster.nodes.append(node)
            cluster.shard_of_node[node.name] = name
        cluster.load_balancer.add_shard_nodes(name, members)
        if self.on_shard_added is not None:
            self.on_shard_added(name, members)

        # 3. Atomic cutover: the ring update is one synchronous call; the
        # next routed request already resolves to the new layout.
        ring.add_shard(name)
        after = ring.arc_measures()
        if self.probe_model is not None:
            self.probe_model.add_shard(name)
        self.engine.add_shard(name)

        # 4. Migrate the minimal cohort delta: each donor loses exactly
        # the hash-space measure the ring took from it.
        sources = {}
        for shard in list(self.engine.shards):
            if shard == name:
                continue
            lost = before.get(shard, 0.0) - after.get(shard, 0.0)
            if lost <= 1e-12:
                continue
            population = sum(self.engine.counts[shard])
            take = int(population * (lost / before[shard]) + 0.5)
            moved = self.engine.begin_migration(
                shard, name, take, window=self.migration_window
            )
            if moved:
                sources[shard] = moved
                self.kernel.trace.publish(
                    "reshard.migrate", source=shard, target=name,
                    sessions=moved, window=self.migration_window,
                )

        # 5. Copy-then-cutover for the concrete store sessions whose keys
        # now hash to the new shard.
        store_moved = self._migrate_store_to(name)

        plan = {
            "op": "add",
            "shard": name,
            "at": round(self.kernel.now, 6),
            "sessions": sum(sources.values()),
            "store_sessions": store_moved,
            "sources": dict(sorted(sources.items())),
            "window": self.migration_window,
        }
        self.plans.append(plan)
        self.kernel.trace.publish(
            "reshard.end", op="add", shard=name,
            sessions=plan["sessions"], store_sessions=store_moved,
        )
        return name

    def _migrate_store_to(self, name):
        """Move every stored session the new ring assigns to ``name``."""
        cluster = self.cluster
        target_group = cluster.shard_groups[name]
        moved = 0
        dropped_pins = []
        for shard in cluster.shard_names:
            if shard == name:
                continue
            group = cluster.shard_groups[shard]
            for sid in group.session_ids():
                if cluster.ring.shard_for(sid) != name:
                    continue
                data = group.read(sid)
                if data is None:  # every replica crashed or lease lapsed
                    continue
                target_group.write(sid, data)
                group.delete(sid)
                dropped_pins.append(sid)
                moved += 1
        cluster.load_balancer.drop_affinity(dropped_pins)
        return moved

    # ------------------------------------------------------------------
    def remove_shard(self, shard):
        """Drain ``shard`` and hand its sessions to the ring's survivors.

        Returns the drained plan record.
        """
        cluster = self.cluster
        ring = cluster.ring
        if shard not in ring.shards:
            raise KeyError(shard)
        if len(ring.shards) <= 1:
            raise ValueError("cannot remove the last shard")
        self.kernel.trace.publish("reshard.begin", op="remove", shard=shard)
        before = ring.arc_measures()
        population = sum(self.engine.counts[shard])

        # 1. The ring forgets the shard first: survivors own the keys
        # before any session moves, so every copy lands where the next
        # request will look for it.
        ring.remove_shard(shard)
        after = ring.arc_measures()

        # 2. Cohort sessions: split the drained population across the
        # survivors in proportion to the hash-space measure each gained.
        survivors = [s for s in self.engine.shards if s != shard]
        gains = [
            max(0.0, after.get(s, 0.0) - before.get(s, 0.0))
            for s in survivors
        ]
        targets = {}
        for s, take in zip(survivors, apportion(gains, population)):
            if take <= 0:
                continue
            moved = self.engine.begin_migration(
                shard, s, take, window=self.migration_window
            )
            if moved:
                targets[s] = moved
                self.kernel.trace.publish(
                    "reshard.migrate", source=shard, target=s,
                    sessions=moved, window=self.migration_window,
                )

        # 3. Concrete store sessions follow the ring's verdict key by key.
        group = cluster.shard_groups[shard]
        store_moved = 0
        store_unreadable = 0
        dropped_pins = []
        for sid in group.session_ids():
            data = group.read(sid)
            if data is None:
                store_unreadable += 1
                continue
            cluster.shard_groups[ring.shard_for(sid)].write(sid, data)
            group.delete(sid)
            dropped_pins.append(sid)
            store_moved += 1
        cluster.load_balancer.drop_affinity(dropped_pins)

        # 4. Cutover: the balancer forgets the shard's nodes (cursors,
        # degraded marks, ring caches, affinity — everything), then the
        # cluster bookkeeping and the probe/cohort models follow.
        members = cluster.load_balancer.remove_shard(shard)
        cluster.shard_names = tuple(
            s for s in cluster.shard_names if s != shard
        )
        cluster.shard_nodes.pop(shard, None)
        self.retired_groups[shard] = cluster.shard_groups.pop(shard)
        member_names = {node.name for node in members}
        cluster.nodes = [
            node for node in cluster.nodes if node.name not in member_names
        ]
        # shard_of_node keeps the departed entries: incidents that opened
        # while the shard lived still attribute to it.
        if self.probe_model is not None:
            self.probe_model.remove_shard(shard)
        self.engine.retire_shard(shard)
        if self.on_shard_removed is not None:
            self.on_shard_removed(shard, members)

        plan = {
            "op": "remove",
            "shard": shard,
            "at": round(self.kernel.now, 6),
            "sessions": sum(targets.values()),
            "store_sessions": store_moved,
            "store_unreadable": store_unreadable,
            "targets": dict(sorted(targets.items())),
            "window": self.migration_window,
        }
        self.plans.append(plan)
        self.kernel.trace.publish(
            "reshard.end", op="remove", shard=shard,
            sessions=plan["sessions"], store_sessions=store_moved,
        )
        return plan


class ElasticPolicy:
    """Replace persistently failing shards with fresh capacity, live.

    Watches the probe model's per-shard failure EWMA every
    ``check_interval`` simulated seconds.  A shard whose worst probe
    class stays at or above ``threshold`` for ``confirm`` consecutive
    checks is *replaced*: a fresh shard is added (scale-out during the
    storm), then the sick shard is drained through the coordinator —
    sessions migrate, nothing is lost, and the fault's blast radius goes
    to zero instead of recurring for the rest of the storm.
    """

    def __init__(
        self,
        kernel,
        coordinator,
        probe_model,
        threshold=0.3,
        confirm=2,
        check_interval=2.0,
        cooldown=10.0,
        max_replacements=8,
        signal=None,
    ):
        """``signal(shard) -> float`` overrides the default sickness
        signal (the probe model's ``shard_fail_rate``); rigs combine the
        probe EWMA with user-visible failure counts here."""
        self.kernel = kernel
        self.coordinator = coordinator
        self.probe_model = probe_model
        self.signal = signal or probe_model.shard_fail_rate
        self.threshold = threshold
        self.confirm = confirm
        self.check_interval = check_interval
        self.cooldown = cooldown
        self.max_replacements = max_replacements
        self.replacements = []
        self._streak = {}
        self._next_allowed = 0.0
        self._process = None

    def start(self, duration):
        self._process = self.kernel.process(
            self._run(duration), name="elastic-policy"
        )
        return self._process

    def _run(self, duration):
        end = self.kernel.now + duration
        while self.kernel.now < end - 1e-9:
            yield self.kernel.timeout(
                min(self.check_interval, end - self.kernel.now)
            )
            self._check()

    def _check(self):
        if len(self.replacements) >= self.max_replacements:
            return
        now = self.kernel.now
        for shard in list(self.probe_model.shards):
            rate = self.signal(shard)
            if rate >= self.threshold:
                self._streak[shard] = self._streak.get(shard, 0) + 1
            else:
                self._streak.pop(shard, None)
                continue
            if self._streak[shard] < self.confirm or now < self._next_allowed:
                continue
            self._replace(shard, rate)
            return  # one replacement per check bounds the churn rate

    def _replace(self, shard, rate):
        self.kernel.trace.publish(
            "reshard.policy", shard=shard, fail_rate=round(rate, 4)
        )
        fresh = self.coordinator.add_shard()
        self.coordinator.remove_shard(shard)
        self._streak.pop(shard, None)
        self._next_allowed = self.kernel.now + self.cooldown
        self.replacements.append(
            {
                "at": round(self.kernel.now, 6),
                "replaced": shard,
                "with": fresh,
                "fail_rate": round(rate, 4),
            }
        )
