"""The comparison-based failure detector (§4).

"The second fault detector submits in parallel each request to the
application instance we are injecting faults into, as well as to a
separate, known-good instance on another machine.  It then compares the
result of the former to the 'truth' provided by the latter, flagging any
differences as failures. ... Certain tweaks were required to account for
timing-related nondeterminism."

Our tweaks: comparisons are restricted to a per-operation whitelist of
stable payload fields (freshly-generated entity ids, ratings, and counts
drift between the instances once any write diverges), and the detector
maintains a cookie translation table because the shadow instance issues its
own session cookies.
"""

from repro.appserver.http import HttpRequest
from repro.core.recovery_manager import FailureKind

#: Operation → payload fields that must match the known-good instance.
COMPARABLE_FIELDS = {
    "HomePage": ("static",),
    "Browse": ("static",),
    "Help": ("static",),
    "LoginForm": ("static",),
    "RegisterUserForm": ("static",),
    "SellItemForm": ("static",),
    "Authenticate": ("user_id",),
    # Logout and AboutMe are compared on structure/status only for freshly
    # registered accounts: the two instances legitimately assign different
    # user ids once any write has diverged.
    "Logout": (),
    "RegisterNewUser": (),
    "BrowseCategories": ("categories",),
    "BrowseRegions": ("regions",),
    "ViewItem": ("item_id", "price"),
    "ViewPastAuctions": ("old_item_ids",),
    "ViewUserInfo": ("user_id", "nickname"),
    "ViewBidHistory": ("item_id",),
    "AboutMe": (),  # self-referential identity fields drift for fresh users
    "MakeBid": ("item_id",),
    "CommitBid": ("accepted",),
    "DoBuyNow": ("item_id",),
    "CommitBuyNow": ("item_id",),
    "RegisterNewItem": ("name",),
    "SearchItemsByCategory": (),
    "SearchItemsByRegion": (),
    "LeaveUserFeedback": ("to_user_id",),
    "CommitUserFeedback": ("to_user_id",),
}


class ComparisonDetector:
    """Replays requests against a known-good shadow system."""

    def __init__(self, shadow_system, metrics=None):
        self.shadow = shadow_system
        self._cookie_map = {}
        self.metrics = metrics
        self.mismatches = 0
        self.checks = 0

    def check(self, request, response):
        """Generator: compare ``response`` against the shadow's answer.

        Returns a FailureKind (COMPARISON_MISMATCH) or None.  Must be
        driven from a simulated process (it issues the shadow request).
        """
        self.checks += 1
        shadow_request = HttpRequest(
            url=request.url,
            operation=request.operation,
            params=dict(request.params),
            cookie=self._cookie_map.get(request.cookie),
            idempotent=request.idempotent,
            client_id=request.client_id,
        )
        shadow_response = yield self.shadow.server.handle_request(shadow_request)

        # Learn the shadow's cookie for this client's session.
        main_cookie = (response.payload or {}).get("cookie")
        shadow_cookie = (shadow_response.payload or {}).get("cookie")
        if main_cookie and shadow_cookie:
            self._cookie_map[main_cookie] = shadow_cookie

        if self.metrics is not None:
            self.metrics.counter("detector.comparison.checks").inc()
        if self._differs(request.operation, response, shadow_response):
            self.mismatches += 1
            if self.metrics is not None:
                self.metrics.counter("detector.comparison.mismatches").inc()
            self.shadow.kernel.trace.publish(
                "detector.mismatch",
                operation=request.operation,
                url=request.url,
            )
            return FailureKind.COMPARISON_MISMATCH
        return None

    def _differs(self, operation, response, truth):
        if getattr(response, "network_error", False) != getattr(
            truth, "network_error", False
        ):
            return True
        if int(response.status) != int(truth.status):
            return True
        fields = COMPARABLE_FIELDS.get(operation, ())
        payload = response.payload or {}
        truth_payload = truth.payload or {}
        return any(payload.get(f) != truth_payload.get(f) for f in fields)
