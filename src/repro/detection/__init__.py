"""Failure detection (§4).

Two detectors, as in the paper:

* :class:`~repro.detection.simple.SimpleDetector` — fast client-side
  checks: network-level errors, HTTP 4xx/5xx, failure keywords in the
  returned HTML, and application-specific checks (being prompted to log in
  while logged in, negative entity ids in replies).
* :class:`~repro.detection.comparison.ComparisonDetector` — submits each
  request in parallel to a separate known-good instance and flags
  differences, the only detector able to identify complex failures such as
  a surreptitiously corrupted dollar amount.
"""

from repro.detection.comparison import COMPARABLE_FIELDS, ComparisonDetector
from repro.detection.simple import SimpleDetector

__all__ = ["COMPARABLE_FIELDS", "ComparisonDetector", "SimpleDetector"]
