"""The simple, fast client-side failure detector (§4).

"If a client encounters a network-level error ... or an HTTP 4xx or 5xx
error, then it flags the response as faulty.  If no such errors occur, the
received HTML is searched for keywords indicative of failure.  Finally, the
detection of an application-specific problem can also mark the response as
faulty (such problems include being prompted to log in when already logged
in, encountering negative item IDs in the reply HTML, etc.)"
"""

from repro.core.recovery_manager import FailureKind

#: Keywords whose presence in a 200 page indicates incorrectly-handled
#: failures (§4).
FAILURE_KEYWORDS = ("exception", "failed", "error")

#: Body signatures of memory exhaustion; routed to the RM's
#: memory-attribution diagnosis rather than call-path scoring.
MEMORY_SIGNATURES = ("heap exhausted", "allocation of", "outofmemory")

#: Payload keys whose values are entity ids (negative values are the
#: paper's canonical application-specific red flag).
ID_KEYS = ("item_id", "bid_id", "buy_id", "user_id", "feedback_id", "to_user_id")


class SimpleDetector:
    """Stateless response classifier; returns a FailureKind or None.

    Optionally counts its verdicts into a telemetry registry
    (``detector.evaluations`` counter, ``detector.flags`` family by kind).
    """

    def __init__(self, metrics=None):
        self.metrics = metrics

    def evaluate(self, request, response, believes_logged_in=False):
        """Classify one response.  None means "looks healthy"."""
        verdict = self._classify(request, response, believes_logged_in)
        if self.metrics is not None:
            self.metrics.counter("detector.evaluations").inc()
            if verdict is not None:
                self.metrics.family("detector.flags").inc(verdict.value)
        return verdict

    def _classify(self, request, response, believes_logged_in):
        if response is None:
            return FailureKind.TIMEOUT
        if getattr(response, "network_error", False):
            return FailureKind.NETWORK
        body = (response.body or "").lower()
        if response.is_error_status:
            if any(signature in body for signature in MEMORY_SIGNATURES):
                return FailureKind.RESOURCE_EXHAUSTION
            return FailureKind.HTTP_ERROR
        if any(keyword in body for keyword in FAILURE_KEYWORDS):
            return FailureKind.KEYWORD
        return self._application_specific(response, believes_logged_in)

    def _application_specific(self, response, believes_logged_in):
        payload = response.payload or {}
        if payload.get("login_required") and believes_logged_in:
            return FailureKind.APP_SPECIFIC
        for key in ID_KEYS:
            value = payload.get(key)
            if isinstance(value, int) and value < 0:
                return FailureKind.APP_SPECIFIC
        for key in ("item_ids", "bid_ids", "old_item_ids"):
            ids = payload.get(key)
            if ids and any(isinstance(v, int) and v < 0 for v in ids):
                return FailureKind.APP_SPECIFIC
        return None
