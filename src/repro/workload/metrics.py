"""Action-weighted throughput (Taw) and response-time accounting (§4).

"An action succeeds or fails atomically: if all operations within the
action succeed, they count toward action-weighted goodput; if an operation
fails, all operations in the corresponding action are marked failed" —
including retroactively, which is why a wide recovery dip also poisons the
requests that preceded the failure within their actions.
"""

from dataclasses import dataclass, field

from repro.telemetry.metrics import MetricsRegistry


@dataclass
class OperationRecord:
    """One HTTP request as the client experienced it."""

    operation: str
    url: str
    issued_at: float
    completed_at: float = None
    ok: bool = False
    response_time: float = None
    failure_kind: str = None
    functional_group: str = None
    retries: int = 0


@dataclass
class ActionRecord:
    """One user action: operations culminating in a commit point."""

    name: str
    client_id: int
    started_at: float
    operations: list = field(default_factory=list)

    @property
    def committed(self):
        """The action succeeded as a whole (its commit point succeeded)."""
        return bool(self.operations) and all(op.ok for op in self.operations)


class TawAccounting:
    """Aggregates operations/actions into the paper's metrics."""

    def __init__(self, metrics=None):
        #: All counts live in a telemetry registry (shareable with the rest
        #: of a rig's instrumentation); the attribute API below is
        #: unchanged — ``good_requests`` and friends read through to it.
        self.registry = metrics if metrics is not None else MetricsRegistry()
        self._good = self.registry.counter("taw.requests.good")
        self._bad = self.registry.counter("taw.requests.failed")
        self._good_actions = self.registry.counter("taw.actions.good")
        self._bad_actions = self.registry.counter("taw.actions.failed")
        self._failures_by_operation = self.registry.family(
            "taw.failures.by_operation"
        )
        self._failures_by_kind = self.registry.family("taw.failures.by_kind")
        self._response_time_hist = self.registry.histogram(
            "taw.response_time"
        )
        self.actions = []
        #: second → count of requests that (retro)counted good/bad there.
        self._good_series = {}
        self._bad_series = {}
        self.response_times = []  # (completed_at, seconds)
        #: Failed-request intervals per functional group, for Figure 2.
        self.failure_intervals = []  # (group, issued_at, completed_at)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_action(self, action):
        """Account one finished action (Taw semantics: all-or-nothing)."""
        self.actions.append(action)
        committed = action.committed
        if committed:
            self._good_actions.inc()
        else:
            self._bad_actions.inc()
        for op in action.operations:
            when = op.completed_at if op.completed_at is not None else op.issued_at
            bucket = int(when)
            if committed:
                self._good.inc()
                self._good_series[bucket] = self._good_series.get(bucket, 0) + 1
            else:
                self._bad.inc()
                self._bad_series[bucket] = self._bad_series.get(bucket, 0) + 1
            if op.response_time is not None:
                self.response_times.append((when, op.response_time))
                self._response_time_hist.observe(op.response_time)
            if not op.ok:
                self.failure_intervals.append(
                    (op.functional_group, op.issued_at, when)
                )
                self._failures_by_operation.inc(op.operation)
                if op.failure_kind:
                    self._failures_by_kind.inc(op.failure_kind)

    def record_batch(self, bucket, good_ops=0, bad_ops=0,
                     good_actions=0, bad_actions=0):
        """Account a whole cohort of finished operations at once.

        The bounded counterpart of :meth:`record_action` for the batch
        workload engine: it moves the same counters and per-second series
        (so availability, Taw windows and the SLO engine read identically)
        but records **no** per-action or per-operation objects — a million
        sessions must not allocate a million records.  Response times go
        separately through :meth:`record_response_times`.
        """
        if good_actions:
            self._good_actions.inc(good_actions)
        if bad_actions:
            self._bad_actions.inc(bad_actions)
        if good_ops:
            self._good.inc(good_ops)
            self._good_series[bucket] = (
                self._good_series.get(bucket, 0) + good_ops
            )
        if bad_ops:
            self._bad.inc(bad_ops)
            self._bad_series[bucket] = (
                self._bad_series.get(bucket, 0) + bad_ops
            )

    def record_response_times(self, seconds, n=1):
        """Feed ``n`` identical response times to the histogram sketch only.

        Batch-path companion to :meth:`record_batch`: quantiles and the
        mean stay available via the sketch while the unbounded
        ``response_times`` list stays untouched.
        """
        self._response_time_hist.observe_many(seconds, n)

    # ------------------------------------------------------------------
    # Series and summaries
    # ------------------------------------------------------------------
    @property
    def good_requests(self):
        return int(self._good.value)

    @property
    def failed_requests(self):
        return int(self._bad.value)

    @property
    def good_actions(self):
        return int(self._good_actions.value)

    @property
    def failed_actions(self):
        return int(self._bad_actions.value)

    @property
    def failures_by_operation(self):
        return self._failures_by_operation.as_dict()

    @property
    def failures_by_kind(self):
        return self._failures_by_kind.as_dict()

    @property
    def total_requests(self):
        return self.good_requests + self.failed_requests

    def good_taw_series(self):
        """Per-second good Taw: {second: successful requests}."""
        return dict(self._good_series)

    def bad_taw_series(self):
        return dict(self._bad_series)

    def requests_in_window(self, start, end):
        """(good, bad) requests whose buckets fall in ``[start, end)``.

        Window-edge contract: **half-open on the bucket label**.  A request
        is bucketed at ``int(completed_at)`` (falling back to ``issued_at``
        when it never completed), and a bucket belongs to the window iff
        ``start <= bucket < end``.  So consecutive windows
        ``[0, w), [w, 2w), ...`` partition the run: every request is
        counted in exactly one window, none is counted twice, and none
        falls between windows.  The SLO engine
        (:mod:`repro.observability.slo`) and the experiments' trailing-
        window checks rely on this partition property; both use the same
        convention for response-time stamps.

        Note the comparison is against the integer bucket label, not the
        raw timestamp: a request completing at t=9.7 lives in bucket 9 and
        is therefore *inside* ``[0, 10)`` but *outside* ``[9.5, 10)``.
        """
        good = sum(v for t, v in self._good_series.items() if start <= t < end)
        bad = sum(v for t, v in self._bad_series.items() if start <= t < end)
        return good, bad

    def operations_mix(self):
        """Operation name → fraction of all recorded requests."""
        counts = {}
        for action in self.actions:
            for op in action.operations:
                counts[op.operation] = counts.get(op.operation, 0) + 1
        total = sum(counts.values())
        if total == 0:
            return {}
        return {name: count / total for name, count in counts.items()}

    def mean_response_time(self):
        if not self.response_times:
            # Batch-recorded runs have no per-request list; the sketch
            # still knows the exact mean (count and sum are not sketched).
            if self._response_time_hist.count:
                return self._response_time_hist.mean
            return None
        return sum(rt for _t, rt in self.response_times) / len(self.response_times)

    def response_time_quantiles(self):
        """Streaming p50/p95/p99 from the registry's histogram sketch."""
        return self._response_time_hist.percentiles()

    def response_times_over(self, threshold=8.0):
        """How many requests exceeded the 8 s abandonment threshold (§5.3)."""
        return sum(1 for _t, rt in self.response_times if rt > threshold)

    def response_time_series(self, bucket_seconds=1.0):
        """Per-bucket mean response time: {bucket_start: seconds}."""
        sums, counts = {}, {}
        for when, rt in self.response_times:
            bucket = int(when / bucket_seconds) * bucket_seconds
            sums[bucket] = sums.get(bucket, 0.0) + rt
            counts[bucket] = counts.get(bucket, 0) + 1
        return {b: sums[b] / counts[b] for b in sorted(sums)}

    def group_unavailability(self, group, min_span=1.0):
        """Merged [start, end] spans during which ``group`` requests failed.

        Figure 2 draws a gap for interval [t1, t2] when a request whose
        processing spanned it eventually failed; "since RegisterNewUser
        requests fail, we show the entire group as unavailable".  Fail-fast
        failures (connection refused) are instantaneous, so each failure
        claims at least ``min_span`` seconds — one plot pixel, as it were.
        """
        spans = sorted(
            (start, max(end, start + min_span))
            for g, start, end in self.failure_intervals
            if g == group
        )
        merged = []
        for start, end in spans:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged
