"""The Markov workload model: actions, operations, and Table 1's mix.

"Human clients are modeled using a Markov chain with 25 states
corresponding to the various end user operations possible in eBid" (§4).
We express the chain at the *action* level: a user session begins with a
login (or registration), performs a geometrically-distributed number of
mid-session actions drawn from a fixed distribution, and ends with a logout
(or abandonment).  Each action is a short script of operations culminating
in its commit point; the union of all scripts covers the 25 operation
states, and the stationary operation mix reproduces Table 1.

Derivation of the default weights (per average session):

* session-lifecycle ops per session: 1 login/registration + 0.75 logout
  = 1.75; for these to be 23% of all requests (Table 1), a session must
  average 1.75/0.23 ≈ 7.61 operations;
* subtracting the session-start ops (1.1, since 10% of sessions register
  via a static form page first) and 0.75 logouts leaves 5.76 mid ops;
* Table 1's remaining percentages then fix the per-session action counts
  encoded in ``mid_action_weights`` (e.g. 0.28 completed bids, 0.204
  sells, 1.128 BrowseCategories views — making BrowseCategories the
  most-frequently invoked component, as §5.2's Figure 1 notes).
"""

from dataclasses import dataclass, field

#: Action name → the operation script it issues.  The last operation is the
#: action's commit point (for single-op actions, the op is its own commit).
ACTION_TEMPLATES = {
    "Login": ("Authenticate",),
    "Register": ("RegisterUserForm", "RegisterNewUser"),
    "Logout": ("Logout",),
    "PlaceBid": ("ViewItem", "MakeBid", "CommitBid"),
    "AbandonBid": ("ViewItem", "MakeBid"),
    "BuyNow": ("ViewItem", "DoBuyNow", "CommitBuyNow"),
    "Sell": ("SellItemForm", "RegisterNewItem"),
    "Feedback": ("LeaveUserFeedback", "CommitUserFeedback"),
    "BrowseCategories": ("BrowseCategories",),
    "BrowseRegions": ("BrowseRegions",),
    "ViewItem": ("ViewItem",),
    "ViewUserInfo": ("ViewUserInfo",),
    "ViewBidHistory": ("ViewBidHistory",),
    "ViewPastAuctions": ("ViewPastAuctions",),
    "AboutMe": ("AboutMe",),
    "SearchByCategory": ("SearchItemsByCategory",),
    "SearchByRegion": ("SearchItemsByRegion",),
    "HomePage": ("HomePage",),
    "Browse": ("Browse",),
    "Help": ("Help",),
    "LoginFormVisit": ("LoginForm",),
}

#: Expected count of each mid-session action per session (see derivation
#: above).  Normalized at use; the geometric session length has this total
#: as its mean.
DEFAULT_MID_ACTION_WEIGHTS = {
    "PlaceBid": 0.280,
    "AbandonBid": 0.280,
    "BuyNow": 0.140,
    "Sell": 0.204,
    "Feedback": 0.137,
    "BrowseCategories": 1.128,
    "ViewItem": 0.174,
    "BrowseRegions": 0.087,
    "ViewUserInfo": 0.104,
    "ViewBidHistory": 0.087,
    "ViewPastAuctions": 0.069,
    "AboutMe": 0.087,
    "SearchByCategory": 0.685,
    "SearchByRegion": 0.228,
    "HomePage": 0.280,
    "Browse": 0.170,
    "Help": 0.100,
    "LoginFormVisit": 0.063,
}


@dataclass
class WorkloadProfile:
    """Everything a client needs to behave like a Table 1 auction user."""

    #: Think time between URL clicks: exponential, mean 7 s, max 70 s
    #: ("as in the TPC-W benchmark", §4).
    think_time_mean: float = 7.0
    think_time_max: float = 70.0

    #: Probability a session starts by registering a new account rather
    #: than logging into an existing one.
    register_probability: float = 0.10

    #: Probability the session ends with an explicit logout (the rest
    #: abandon the site, §4).
    logout_probability: float = 0.75

    mid_action_weights: dict = field(
        default_factory=lambda: dict(DEFAULT_MID_ACTION_WEIGHTS)
    )

    #: Client patience: a request with no response after this long is a
    #: timeout failure.
    request_timeout: float = 30.0

    def __post_init__(self):
        unknown = set(self.mid_action_weights) - set(ACTION_TEMPLATES)
        if unknown:
            raise ValueError(f"unknown actions in weights: {sorted(unknown)}")
        self._actions = sorted(self.mid_action_weights)
        total = sum(self.mid_action_weights.values())
        self._cumulative = []
        acc = 0.0
        for name in self._actions:
            acc += self.mid_action_weights[name] / total
            self._cumulative.append(acc)
        #: Mean number of mid-session actions (geometric).
        self.mean_mid_actions = total
        self._continue_probability = total / (total + 1.0)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def think_time(self, rng):
        return min(rng.expovariate(1.0 / self.think_time_mean), self.think_time_max)

    def first_action(self, rng):
        if rng.random() < self.register_probability:
            return "Register"
        return "Login"

    def next_mid_action(self, rng):
        """One mid-session action, or None when the session ends."""
        if rng.random() >= self._continue_probability:
            return None
        draw = rng.random()
        for name, boundary in zip(self._actions, self._cumulative):
            if draw <= boundary:
                return name
        return self._actions[-1]

    def wants_logout(self, rng):
        return rng.random() < self.logout_probability

    def session_actions(self, rng):
        """Generate one session's action names, start to finish."""
        yield self.first_action(rng)
        while True:
            action = self.next_mid_action(rng)
            if action is None:
                break
            yield action
        if self.wants_logout(rng):
            yield "Logout"
