"""The emulated client population (§4).

Each client is a simulated process looping through user sessions: log in
(or register), perform a few actions with exponential think times between
URL clicks, log out (or abandon).  Clients run the simple failure detector
on every response — mimicking the "client-like end-to-end monitors" WAN
services deploy — optionally mirror requests through the comparison
detector, and report failures to the recovery manager.
"""

from repro.core.recovery_manager import FailureReport
from repro.detection.simple import SimpleDetector
from repro.ebid.descriptors import OPERATIONS, operation_url
from repro.workload.markov import ACTION_TEMPLATES, WorkloadProfile
from repro.workload.metrics import ActionRecord, OperationRecord, TawAccounting
from repro.appserver.http import HttpRequest, HttpResponse, HttpStatus


class ParamSampler:
    """Plausible operation parameters for a generated dataset."""

    def __init__(self, dataset, rng):
        self.dataset = dataset
        self.rng = rng

    def item_id(self):
        return self.rng.randint(1, self.dataset.items)

    def category_id(self):
        return self.rng.randint(1, self.dataset.categories)

    def region_id(self):
        return self.rng.randint(1, self.dataset.regions)

    def other_user_id(self, not_this):
        candidate = self.rng.randint(1, self.dataset.users)
        if candidate == not_this:
            candidate = candidate % self.dataset.users + 1
        return candidate


class EmulatedClient:
    """One simulated human user."""

    def __init__(
        self,
        client_id,
        kernel,
        rng,
        frontend,
        dataset,
        metrics=None,
        profile=None,
        user_id=None,
        reporter=None,
        comparison=None,
        max_retries=3,
    ):
        self.client_id = client_id
        self.kernel = kernel
        self.rng = rng
        self.frontend = frontend
        self.dataset = dataset
        self.metrics = metrics if metrics is not None else TawAccounting()
        self.profile = profile or WorkloadProfile()
        self.user_id = user_id or (client_id % dataset.users) + 1
        self.reporter = reporter
        self.detector = SimpleDetector()
        self.comparison = comparison
        self.max_retries = max_retries
        self.sampler = ParamSampler(dataset, rng)

        self.cookie = None
        self.believes_logged_in = False
        self._session_lost = False
        self._registration_serial = 0

    # ------------------------------------------------------------------
    # The client process
    # ------------------------------------------------------------------
    def run(self):
        """Generator: live forever, session after session."""
        # Stagger start-up so the population does not click in lockstep.
        yield self.kernel.timeout(
            self.rng.uniform(0, 2 * self.profile.think_time_mean)
        )
        while True:
            # Sessions chain with ordinary think times (the per-operation
            # think before each click covers the inter-session gap), which
            # keeps the offered load at clients/(think+RT) — the Little's-
            # law calibration behind Table 5's ~72 req/s at 500 clients.
            yield from self.run_session()

    def run_session(self):
        """Generator: one user session (login → actions → logout)."""
        self.cookie = None
        self.believes_logged_in = False
        self._session_lost = False
        for action_name in self.profile.session_actions(self.rng):
            action = ActionRecord(
                name=action_name,
                client_id=self.client_id,
                started_at=self.kernel.now,
            )
            context = {}
            failed = False
            for op_name in ACTION_TEMPLATES[action_name]:
                yield self.kernel.timeout(self.profile.think_time(self.rng))
                record = yield from self._do_operation(op_name, context)
                action.operations.append(record)
                if not record.ok:
                    failed = True
                    break
            self.metrics.record_action(action)
            if failed and (action_name in ("Login", "Register") or self._session_lost):
                return  # cannot meaningfully continue this session

    # ------------------------------------------------------------------
    # One operation
    # ------------------------------------------------------------------
    def _do_operation(self, op_name, context):
        request = self._build_request(op_name, context)
        _category, _idempotent, group = OPERATIONS[op_name]
        record = OperationRecord(
            operation=op_name,
            url=request.url,
            issued_at=self.kernel.now,
            functional_group=group,
        )
        # ``enabled`` is checked here rather than inside publish() so the
        # disabled (default) case does not even build the kwargs dict —
        # this path runs once per request.
        trace = self.kernel.trace
        if trace.enabled:
            trace.publish(
                "request.start",
                client=self.client_id,
                operation=op_name,
                url=request.url,
            )
        response = yield from self._issue(request, record)
        record.completed_at = self.kernel.now
        record.response_time = record.completed_at - record.issued_at

        failure = self.detector.evaluate(
            request, response, believes_logged_in=self.believes_logged_in
        )
        if failure is None and self.comparison is not None:
            failure = yield from self.comparison.check(request, response)

        # The client knows the end-to-end verdict, so it closes the span
        # trace (if admission attached one): the completed path carries the
        # gold failure label the path analyzer correlates against.
        trace_ctx = request.trace
        if trace_ctx is not None:
            trace_ctx.finish(
                ok=failure is None,
                failure=failure.value if failure is not None else None,
            )

        if trace.enabled:
            trace.publish(
                "request.end",
                client=self.client_id,
                operation=op_name,
                ok=failure is None,
                duration=record.response_time,
                failure=failure.value if failure is not None else None,
                retries=record.retries,
            )
        if failure is None:
            record.ok = True
            self._absorb_success(op_name, response, context)
        else:
            record.failure_kind = failure.value
            self._absorb_failure(response)
            if trace.enabled:
                trace.publish(
                    "detector.report",
                    client=self.client_id,
                    failure=failure.value,
                    url=request.url,
                    reported=self.reporter is not None,
                )
            if self.reporter is not None:
                self.reporter(
                    FailureReport(
                        time=self.kernel.now,
                        url=request.url,
                        operation=op_name,
                        kind=failure,
                        detail=(response.body[:80] if response else "no response"),
                        client_id=self.client_id,
                        cookie=self.cookie,
                    )
                )
        return record

    def _issue(self, request, record):
        """Generator: send the request, honouring 503 Retry-After (§6.2)."""
        attempts = 0
        while True:
            event = self.frontend.handle_request(request)
            patience = self.kernel.timeout(self.profile.request_timeout)
            try:
                yield self.kernel.any_of([event, patience])
            except Exception as exc:  # noqa: BLE001 - a failed frontend
                # event (e.g. the load balancer's forwarding process died)
                # must surface as an observable failure, not kill the
                # client process.
                return HttpResponse(
                    status=HttpStatus.INTERNAL_SERVER_ERROR,
                    body=f"network error: {type(exc).__name__}: {exc}",
                    network_error=True,
                )
            if not event.triggered:
                return None  # client gave up waiting
            response = event.value
            if (
                response.status == HttpStatus.SERVICE_UNAVAILABLE
                and response.retry_after
                and request.idempotent
                and attempts < self.max_retries
            ):
                attempts += 1
                record.retries = attempts
                yield self.kernel.timeout(response.retry_after)
                continue
            return response

    # ------------------------------------------------------------------
    # State transitions driven by responses
    # ------------------------------------------------------------------
    def _absorb_success(self, op_name, response, context):
        payload = response.payload or {}
        if op_name in ("Authenticate", "RegisterNewUser"):
            self.cookie = payload.get("cookie")
            self.believes_logged_in = True
        elif op_name == "Logout":
            self.cookie = None
            self.believes_logged_in = False
        if "current_bid" in payload:
            context["current_bid"] = payload["current_bid"]
        if payload.get("login_required"):
            # Healthy response, but we were silently logged out (session
            # expired on the server side without us noticing).
            self.believes_logged_in = False

    def _absorb_failure(self, response):
        payload = (response.payload or {}) if response is not None else {}
        if payload.get("login_required"):
            # Our session evaporated (lost or corrupted server-side).
            self.cookie = None
            self.believes_logged_in = False
            self._session_lost = True

    # ------------------------------------------------------------------
    # Request construction
    # ------------------------------------------------------------------
    def _build_request(self, op_name, context):
        params = {}
        if op_name == "Authenticate":
            params = {"user_id": self.user_id, "password": f"pw{self.user_id}"}
        elif op_name == "RegisterNewUser":
            self._registration_serial += 1
            params = {
                "nickname": f"nick-{self.client_id}-{self._registration_serial}",
                "password": "fresh-pw",
                "region_id": self.sampler.region_id(),
            }
        elif op_name in ("ViewItem", "MakeBid", "DoBuyNow", "ViewBidHistory"):
            params = {"item_id": context.setdefault("item_id", self.sampler.item_id())}
        elif op_name == "CommitBid":
            # Increment 0 is a lowball bid at exactly the current maximum:
            # a healthy CommitBid politely rejects it (its min_increment
            # check), so a small share of rejections is normal traffic —
            # and a corrupted min_increment silently accepting them is how
            # that fault becomes visible (Table 2).
            amount = context.get("current_bid", 0) + self.rng.randint(0, 10)
            params = {"amount": amount}
        elif op_name == "SearchItemsByCategory":
            params = {"category_id": self.sampler.category_id()}
        elif op_name == "SearchItemsByRegion":
            params = {"region_id": self.sampler.region_id()}
        elif op_name == "ViewUserInfo":
            params = {"user_id": self.sampler.other_user_id(self.user_id)}
        elif op_name == "LeaveUserFeedback":
            params = {"to_user_id": self.sampler.other_user_id(self.user_id)}
        elif op_name == "CommitUserFeedback":
            params = {"rating": self.rng.choice((-1, 0, 1)), "comment": "thanks"}
        elif op_name == "RegisterNewItem":
            params = {
                "name": f"ware-{self.client_id}-{self.kernel.now:.0f}",
                "category_id": self.sampler.category_id(),
                "region_id": self.sampler.region_id(),
                "initial_price": self.rng.randint(1, 200),
            }
        _category, idempotent, _group = OPERATIONS[op_name]
        return HttpRequest(
            url=operation_url(op_name),
            operation=op_name,
            params=params,
            cookie=self.cookie,
            idempotent=idempotent,
            client_id=self.client_id,
        )


class ClientPopulation:
    """A fleet of emulated clients sharing one metrics sink."""

    def __init__(
        self,
        kernel,
        frontend,
        dataset,
        n_clients,
        rng_registry,
        profile=None,
        reporter=None,
        comparison=None,
        metrics=None,
        name_prefix="client",
    ):
        self.kernel = kernel
        self.metrics = metrics if metrics is not None else TawAccounting()
        self.clients = [
            EmulatedClient(
                client_id=i,
                kernel=kernel,
                rng=rng_registry.stream(f"{name_prefix}-{i}"),
                frontend=frontend,
                dataset=dataset,
                metrics=self.metrics,
                profile=profile,
                reporter=reporter,
                comparison=comparison,
            )
            for i in range(n_clients)
        ]
        self._processes = []

    def start(self):
        """Spawn every client's process."""
        self._processes = [
            self.kernel.process(client.run(), name=f"client-{client.client_id}")
            for client in self.clients
        ]
        return self._processes
