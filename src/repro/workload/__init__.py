"""Client emulation and the action-weighted throughput (Taw) metric (§4).

Human clients are modelled with a Markov process over eBid's 25 end-user
operations, grouped into *user actions* (sequences of operations that
culminate in a commit point).  Emulated clients think for an exponentially
distributed time between URL clicks (mean 7 s, max 70 s, as in TPC-W), and
the resulting operation mix reproduces Table 1.
"""

from repro.workload.client import ClientPopulation, EmulatedClient
from repro.workload.markov import ACTION_TEMPLATES, WorkloadProfile
from repro.workload.metrics import TawAccounting

__all__ = [
    "ACTION_TEMPLATES",
    "ClientPopulation",
    "EmulatedClient",
    "TawAccounting",
    "WorkloadProfile",
]
