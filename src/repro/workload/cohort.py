"""Cohort-vectorized workload engine: a million sessions without a
million processes.

The per-client engine (:mod:`repro.workload.client`) gives every emulated
user its own kernel process — perfect fidelity at the paper's hundreds of
clients, hopeless at a million.  This module keeps the *statistics* of
that population (the Table 1 Markov mix, exponential think times, Taw's
all-or-nothing action accounting) while dropping the per-session event
machinery:

* the session population lives in **array-based per-state tables**: one
  integer count per ``(shard, Markov state)`` cell, where a state is a
  position inside an action's operation script.  A million sessions cost
  a few thousand integers, not a million generators;
* per think-time tick, each cell samples how many of its sessions click
  (a binomial draw with ``p = tick / (think + latency)`` — the matched-
  rate discretization of the exponential think process, so the mean
  inter-click gap equals the per-client engine's ``think + RT`` exactly
  and Little's-law offered load carries over),
  splits them into successes and failures against the shard's live
  outcome model, and pools all end-of-action sessions into **one
  aggregate multinomial draw per shard** over the flattened
  next-action distribution — the same chain the per-client profile
  samples one session at a time;
* every draw comes from a **dedicated per-shard RNG stream**
  (``cohort/<shard>``), so results are deterministic for a seed and
  independent of shard iteration order or anything else in the rig;
* metrics feed the existing :class:`~repro.workload.metrics.TawAccounting`
  through its bounded batch interface (counters, per-second series and
  the DDSketch response-time histogram — never per-action records), so
  memory stays flat no matter the population;
* **per-session detail is lazy**: sessions have no identity until one
  fails.  Failed clicks materialize up to a bounded number of
  :class:`SessionDetail` records per tick, which the rig forwards to the
  recovery managers as failure reports — the cohort analogue of the
  paper's client-side detectors.

The engine never talks HTTP itself; it consumes an *outcome model*
``outcome(shard, operation) -> (fail_probability, latency_seconds)``.
The megascale scenario grounds that model in reality by probing each
shard through the real load balancer / application-server stack every
tick, so injected faults, failovers and recoveries show up in the cohort
numbers with live-measured timing.
"""

from dataclasses import dataclass
from math import exp, log, sqrt

from repro.ebid.descriptors import operation_url
from repro.workload.markov import ACTION_TEMPLATES, WorkloadProfile

#: Actions whose failure ends the session (mirrors EmulatedClient: a failed
#: Login/Register aborts; everything else continues to the next action).
SESSION_FATAL_ACTIONS = frozenset({"Login", "Register", "Logout"})


# ----------------------------------------------------------------------
# Deterministic aggregate samplers
# ----------------------------------------------------------------------
def binomial(rng, n, p):
    """One Binomial(n, p) draw from ``rng``, exact for the regimes the
    cohort tables actually visit.

    Small cells (the small-N equivalence regime) sum explicit Bernoulli
    draws; larger cells with a modest mean use pmf inversion (exact, a
    handful of iterations); only huge cells with a large mean fall back
    to the clamped normal approximation, where the relative error is far
    below the engine's documented tolerance.
    """
    if n <= 0 or p <= 0.0:
        return 0
    if p >= 1.0:
        return n
    if n < 32:
        hits = 0
        for _ in range(n):
            if rng.random() < p:
                hits += 1
        return hits
    mean = n * p
    if mean <= 32.0:
        # Inversion on the binomial pmf: p0 = (1-p)^n, then the
        # multiplicative recurrence.  Iterations ~ mean + a few sd.
        log_q = n * log(1.0 - p)
        pmf = exp(log_q)
        ratio = p / (1.0 - p)
        u = rng.random()
        k = 0
        while u > pmf and k < n:
            u -= pmf
            k += 1
            pmf *= ratio * (n - k + 1) / k
        return k
    sd = sqrt(mean * (1.0 - p))
    draw = int(rng.gauss(mean, sd) + 0.5)
    return min(n, max(0, draw))


def proportional_split(counts, take):
    """Split ``take`` units across cells proportionally to ``counts``.

    Largest-remainder apportionment, capped per cell and RNG-free, so a
    migration plan is a pure function of the tables it drains — the
    determinism contract (same seed ⇒ same plan, jobs=1 ≡ jobs=N) needs
    nothing beyond the tables themselves.  Returns a list of takes,
    ``0 <= take_i <= counts[i]`` and ``sum == min(take, sum(counts))``.
    """
    total = sum(counts)
    take = min(take, total)
    out = [0] * len(counts)
    if take <= 0:
        return out
    remaining = take
    quotas = []
    for i, count in enumerate(counts):
        if count <= 0:
            continue
        exact = take * count / total
        base = min(count, int(exact))
        out[i] = base
        remaining -= base
        quotas.append((exact - base, count, i))
    # Hand out the remainder by largest fractional part (ties broken by
    # cell index, for a stable order), skipping saturated cells; loop in
    # case caps force a second pass.
    while remaining > 0:
        quotas.sort(key=lambda q: (-q[0], q[2]))
        progressed = False
        for frac, count, i in quotas:
            if remaining <= 0:
                break
            if out[i] < count:
                out[i] += 1
                remaining -= 1
                progressed = True
        if not progressed:  # every cell saturated (take == total)
            break
    return out


def multinomial(rng, n, probs):
    """Split ``n`` across categories with probabilities ``probs``.

    Sequential conditional binomials — the standard reduction, so the
    whole split costs ``len(probs)`` binomial draws however large ``n``
    gets.  ``probs`` must sum to ~1; the last category absorbs rounding.
    """
    counts = [0] * len(probs)
    remaining = n
    remaining_p = 1.0
    for i, p in enumerate(probs):
        if remaining <= 0:
            break
        if remaining_p <= 0.0 or i == len(probs) - 1:
            counts[i] = remaining
            remaining = 0
            break
        share = min(1.0, p / remaining_p)
        take = binomial(rng, remaining, share)
        counts[i] = take
        remaining -= take
        remaining_p -= p
    return counts


# ----------------------------------------------------------------------
# The flattened Markov state space
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CohortState:
    """One Markov state: the next operation a session will issue."""

    index: int
    action: str
    op_index: int
    operation: str
    n_ops: int

    @property
    def is_last(self):
        return self.op_index == self.n_ops - 1


class CohortStateSpace:
    """Flattened (action, op-position) states plus pooled transitions.

    Two distributions cover every end-of-action transition, so each shard
    needs exactly two multinomial draws per tick:

    * ``entry``: which action starts a fresh session (Login vs Register);
    * ``next_action``: where a session goes after finishing any non-Logout
      action — continue with a weighted mid action, log out, or (having
      declined both) chain straight into a new session's first action.
      This is the per-client ``session_actions`` generator flattened into
      a single categorical.
    """

    def __init__(self, profile=None):
        self.profile = profile or WorkloadProfile()
        self.states = []
        self._by_key = {}
        for action in sorted(ACTION_TEMPLATES):
            ops = ACTION_TEMPLATES[action]
            for i, op in enumerate(ops):
                state = CohortState(
                    index=len(self.states),
                    action=action,
                    op_index=i,
                    operation=op,
                    n_ops=len(ops),
                )
                self.states.append(state)
                self._by_key[(action, i)] = state.index

        p = self.profile
        entry = {
            self.entry_index("Login"): 1.0 - p.register_probability,
            self.entry_index("Register"): p.register_probability,
        }
        self.entry_dist = self._as_dist(entry)

        cont = p._continue_probability
        total = sum(p.mid_action_weights.values())
        next_action = {}
        for name, weight in p.mid_action_weights.items():
            next_action[self.entry_index(name)] = cont * weight / total
        stop = 1.0 - cont
        next_action[self.entry_index("Logout")] = (
            next_action.get(self.entry_index("Logout"), 0.0)
            + stop * p.logout_probability
        )
        abandon = stop * (1.0 - p.logout_probability)
        for idx, share in entry.items():
            next_action[idx] = next_action.get(idx, 0.0) + abandon * share
        self.next_action_dist = self._as_dist(next_action)

    @staticmethod
    def _as_dist(mapping):
        """(state indices tuple, probabilities tuple), deterministic order."""
        items = sorted(mapping.items())
        return tuple(i for i, _ in items), tuple(pr for _, pr in items)

    def entry_index(self, action):
        return self._by_key[(action, 0)]

    def state_index(self, action, op_index=0):
        return self._by_key[(action, op_index)]

    def __len__(self):
        return len(self.states)


# ----------------------------------------------------------------------
# Lazy per-session detail
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SessionDetail:
    """A failed click, materialized into a concrete session's story.

    Sessions are anonymous counts until something goes wrong; the engine
    mints a stable synthetic identity only then, bounded per tick, so the
    recovery pipeline gets individually attributable failure reports
    without the engine ever holding per-session state.
    """

    session_id: int
    shard: str
    action: str
    operation: str
    url: str
    at: float


class CohortEngine:
    """Batched Markov workload over a sharded session population."""

    def __init__(
        self,
        kernel,
        rng_registry,
        outcome,
        n_sessions,
        shards,
        ring=None,
        profile=None,
        metrics=None,
        tick=1.0,
        reporter=None,
        max_details_per_tick=3,
        detail_retention=200,
    ):
        """Args:
            outcome: ``outcome(shard, operation) -> (fail_p, latency_s)``,
                consulted live each tick per (shard, state) cell.
            shards: shard names; sessions are placed by ``ring`` when given
                (consistent hashing of the session index), else spread
                round-robin.
            reporter: optional callable receiving each materialized
                :class:`SessionDetail` (at most ``max_details_per_tick``
                per shard per tick) — the cohort failure-detector feed.
        """
        from repro.workload.metrics import TawAccounting

        if n_sessions <= 0:
            raise ValueError(f"n_sessions must be positive, got {n_sessions}")
        if tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        self.kernel = kernel
        self.outcome = outcome
        self.n_sessions = n_sessions
        self.shards = list(shards)
        self.space = CohortStateSpace(profile)
        self.profile = self.space.profile
        self.metrics = metrics if metrics is not None else TawAccounting()
        self.tick = tick
        self.reporter = reporter
        self.max_details_per_tick = max_details_per_tick
        self.detail_retention = detail_retention
        self._rng_registry = rng_registry
        self._rngs = {
            shard: rng_registry.stream(f"cohort/{shard}")
            for shard in self.shards
        }

        #: shard -> [count per state index] — the whole population.
        self.counts = {}
        self.shard_sessions = self._place_sessions(ring)
        for shard in self.shards:
            rng = self._rngs[shard]
            table = [0] * len(self.space)
            indices, probs = self.space.entry_dist
            for idx, n in zip(
                indices, multinomial(rng, self.shard_sessions[shard], probs)
            ):
                table[idx] += n
            self.counts[shard] = table

        #: Aggregate operation mix (issued clicks per operation name).
        self.ops_issued = {}
        #: Finished actions per action name (committed + failed): the same
        #: events the per-client engine's ``record_action`` sees, so the
        #: two engines' action mixes are directly comparable.
        self.actions_finished = {}
        #: shard -> {second: failed clicks} / {second: good clicks}.
        self.shard_bad_series = {shard: {} for shard in self.shards}
        self.shard_good_series = {shard: {} for shard in self.shards}
        #: Materialized failures: bounded list + full count.
        self.details = []
        self.details_dropped = 0
        self.total_details = 0
        self._detail_serial = 0
        self.ticks_run = 0
        self._process = None
        #: Elastic resharding state: sessions mid-migration (extracted
        #: from their source shard, not yet released into the target),
        #: retired shards (kept for summary/accounting completeness), and
        #: the per-move log the reshard plans are gated on.
        self._in_transit = []  # [release_time, target shard, state vector]
        self._retired = []
        self.migrations = []
        self.sessions_migrated = 0

    # ------------------------------------------------------------------
    def _place_sessions(self, ring):
        """Shard → session count, by consistent hashing when a ring is
        given (each session index is a key) or round-robin otherwise."""
        placed = {shard: 0 for shard in self.shards}
        if ring is None:
            for i in range(self.n_sessions):
                placed[self.shards[i % len(self.shards)]] += 1
        else:
            shard_set = set(self.shards)
            for i in range(self.n_sessions):
                shard = ring.shard_for(i)
                if shard not in shard_set:
                    raise ValueError(
                        f"ring places session {i} on unknown shard {shard!r}"
                    )
                placed[shard] += 1
        return placed

    # ------------------------------------------------------------------
    # Elastic resharding: shards join/leave, sessions migrate live
    # ------------------------------------------------------------------
    def add_shard(self, shard):
        """A shard joins: empty tables, its own dedicated RNG stream."""
        if shard in self.shards or shard in self._retired:
            raise ValueError(f"shard {shard!r} already known to the engine")
        self.shards.append(shard)
        self._rngs[shard] = self._rng_registry.stream(f"cohort/{shard}")
        self.counts[shard] = [0] * len(self.space)
        self.shard_sessions[shard] = 0
        self.shard_good_series[shard] = {}
        self.shard_bad_series[shard] = {}

    def retire_shard(self, shard):
        """A drained shard leaves the tick loop.

        Its series and session history stay behind so cluster-level
        availability accounting remains complete; only future ticks stop
        visiting it.  Refuses while sessions still live there or are in
        flight toward it — retiring those would *lose* them.
        """
        if shard not in self.shards:
            raise KeyError(shard)
        if sum(self.counts[shard]):
            raise ValueError(f"retire_shard({shard!r}): sessions still live")
        if any(target == shard for _t, target, _v in self._in_transit):
            raise ValueError(f"retire_shard({shard!r}): migrations inbound")
        self.shards.remove(shard)
        self._retired.append(shard)

    def begin_migration(self, source, target, count, window=2.0):
        """Extract ``count`` sessions from ``source``; release them into
        ``target`` after ``window`` simulated seconds.

        Copy-then-cutover: the extracted sessions spend the window in an
        in-transit buffer — briefly unavailable (they issue no clicks, so
        migration shows up as a Gaw dip, never as failures) but always
        counted, so :meth:`population` conservation holds throughout.
        The per-cell extraction is largest-remainder proportional over
        the source's occupied cells: deterministic, RNG-free, and
        statistically faithful to the cohort's state mix.
        Returns how many sessions actually moved (≤ ``count``).
        """
        if target not in self.counts or target in self._retired:
            raise KeyError(target)
        table = self.counts[source]
        takes = proportional_split(table, count)
        moved = sum(takes)
        if moved <= 0:
            return 0
        vector = [0] * len(table)
        for idx, take in enumerate(takes):
            if take:
                table[idx] -= take
                vector[idx] = take
        self.shard_sessions[source] -= moved
        self._in_transit.append([self.kernel.now + window, target, vector])
        self.sessions_migrated += moved
        self.migrations.append(
            {
                "source": source,
                "target": target,
                "sessions": moved,
                "at": round(self.kernel.now, 6),
                "window": window,
            }
        )
        if self.kernel.trace.enabled:
            self.kernel.trace.publish(
                "cohort.migrate", source=source, target=target,
                sessions=moved, window=window,
            )
        return moved

    def in_transit(self):
        """Sessions currently inside a migration window."""
        return sum(sum(vector) for _t, _target, vector in self._in_transit)

    def _release_arrivals(self, now):
        """Fold due in-transit vectors into their target shard's tables."""
        due, keep = [], []
        for entry in self._in_transit:
            (due if entry[0] <= now + 1e-9 else keep).append(entry)
        if not due:
            return
        self._in_transit = keep
        for _t, target, vector in due:
            table = self.counts[target]
            arrived = 0
            for idx, n in enumerate(vector):
                if n:
                    table[idx] += n
                    arrived += n
            self.shard_sessions[target] += arrived
            if self.kernel.trace.enabled:
                self.kernel.trace.publish(
                    "cohort.migrate.arrived", target=target, sessions=arrived
                )

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def start(self, duration):
        """Spawn the engine's kernel process, ticking for ``duration``."""
        self._process = self.kernel.process(
            self._run(duration), name="cohort-engine"
        )
        return self._process

    def _run(self, duration):
        end = self.kernel.now + duration
        while self.kernel.now < end - 1e-9:
            yield self.kernel.timeout(min(self.tick, end - self.kernel.now))
            self.run_tick()

    def run_tick(self):
        """Advance every cohort by one think-time tick."""
        now = self.kernel.now
        if self._in_transit:
            self._release_arrivals(now)
        bucket = int(now)
        space = self.space
        states = space.states
        think = self.profile.think_time_mean
        trace = self.kernel.trace
        for shard in self.shards:
            table = self.counts[shard]
            rng = self._rngs[shard]
            good_ops = bad_ops = good_actions = bad_actions = 0
            rt_batches = []
            pool_next = 0  # sessions drawing their next action
            pool_entry = 0  # sessions starting a fresh session
            moves = []  # (state index, +sessions) applied after the scan
            details_budget = self.max_details_per_tick
            for idx, count in enumerate(table):
                if count <= 0:
                    continue
                state = states[idx]
                fail_p, latency = self.outcome(shard, state.operation)
                gap = think + max(0.0, latency)
                # Matched-rate discretization: a geometric with success
                # probability tick/gap has mean inter-click gap exactly
                # ``gap`` ticks×tick, so the offered click rate equals the
                # per-client engine's 1/(think + RT) per session.
                p_fire = min(1.0, self.tick / gap)
                fired = binomial(rng, count, p_fire)
                if fired <= 0:
                    continue
                failed = (
                    binomial(rng, fired, fail_p) if fail_p > 0.0 else 0
                )
                ok = fired - failed
                moves.append((idx, -fired))
                self.ops_issued[state.operation] = (
                    self.ops_issued.get(state.operation, 0) + fired
                )
                rt_batches.append((max(0.0, latency), fired))
                if failed:
                    bad_ops += failed * (state.op_index + 1)
                    bad_actions += failed
                    self.actions_finished[state.action] = (
                        self.actions_finished.get(state.action, 0) + failed
                    )
                    if state.action in SESSION_FATAL_ACTIONS:
                        pool_entry += failed
                    else:
                        pool_next += failed
                    if details_budget > 0:
                        details_budget -= self._materialize(
                            shard, state, now, min(failed, details_budget)
                        )
                if ok:
                    if state.is_last:
                        good_ops += ok * state.n_ops
                        good_actions += ok
                        self.actions_finished[state.action] = (
                            self.actions_finished.get(state.action, 0) + ok
                        )
                        if state.action == "Logout":
                            pool_entry += ok
                        else:
                            pool_next += ok
                    else:
                        moves.append((idx + 1, ok))
            # Pooled end-of-action transitions: one multinomial per pool.
            for pool, (indices, probs) in (
                (pool_next, space.next_action_dist),
                (pool_entry, space.entry_dist),
            ):
                if pool <= 0:
                    continue
                for idx, n in zip(indices, multinomial(rng, pool, probs)):
                    if n:
                        moves.append((idx, n))
            for idx, delta in moves:
                table[idx] += delta
            # Bounded accounting: counters + series + histogram only.
            self.metrics.record_batch(
                bucket,
                good_ops=good_ops,
                bad_ops=bad_ops,
                good_actions=good_actions,
                bad_actions=bad_actions,
            )
            for latency, n in rt_batches:
                self.metrics.record_response_times(latency, n)
            if good_ops:
                series = self.shard_good_series[shard]
                series[bucket] = series.get(bucket, 0) + good_ops
            if bad_ops:
                series = self.shard_bad_series[shard]
                series[bucket] = series.get(bucket, 0) + bad_ops
                if trace.enabled:
                    trace.publish(
                        "cohort.failures",
                        shard=shard,
                        count=bad_ops,
                        actions=bad_actions,
                    )
        self.ticks_run += 1

    def _materialize(self, shard, state, now, n):
        """Mint up to ``n`` concrete failed-session records (lazy detail)."""
        made = 0
        for _ in range(n):
            self._detail_serial += 1
            detail = SessionDetail(
                session_id=self._detail_serial,
                shard=shard,
                action=state.action,
                operation=state.operation,
                url=operation_url(state.operation),
                at=now,
            )
            self.total_details += 1
            if len(self.details) < self.detail_retention:
                self.details.append(detail)
            else:
                self.details_dropped += 1
            if self.reporter is not None:
                self.reporter(detail)
            made += 1
        return made

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def population(self):
        """Total sessions currently tracked (conservation invariant).

        Includes sessions inside a migration window: in transit is
        unavailable, not lost.
        """
        return (
            sum(sum(table) for table in self.counts.values())
            + self.in_transit()
        )

    def operations_mix(self):
        """Operation → fraction of issued clicks (Table 1's shape)."""
        total = sum(self.ops_issued.values())
        if total == 0:
            return {}
        return {op: n / total for op, n in sorted(self.ops_issued.items())}

    def action_mix(self):
        """Action → fraction of finished actions (committed + failed).

        Counts exactly the events the per-client engine's
        ``record_action`` counts, so the two mixes are comparable one to
        one in the equivalence contract.
        """
        total = sum(self.actions_finished.values())
        if not total:
            return {}
        return {
            a: c / total for a, c in sorted(self.actions_finished.items())
        }

    def shard_summary(self):
        """Per-shard sessions, clicks and availability (sorted rows).

        Retired shards keep their rows: their clicks happened and still
        count toward cluster availability; ``sessions`` shows the 0 they
        drained to.
        """
        rows = []
        for shard in list(self.shards) + self._retired:
            good = sum(self.shard_good_series[shard].values())
            bad = sum(self.shard_bad_series[shard].values())
            total = good + bad
            rows.append(
                {
                    "shard": shard,
                    "sessions": self.shard_sessions[shard],
                    "good": good,
                    "bad": bad,
                    "availability": (
                        round(good / total, 4) if total else None
                    ),
                }
            )
        return rows

    def worst_shard(self):
        """The shard with the lowest availability (None when idle)."""
        rows = [r for r in self.shard_summary() if r["availability"] is not None]
        if not rows:
            return None
        return min(rows, key=lambda r: (r["availability"], r["shard"]))
